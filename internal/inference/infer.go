package inference

import "csspgo/internal/ir"

// Result summarizes one function's inference run.
type Result struct {
	Augmentations int
	// Adjusted counts how many blocks changed weight.
	Adjusted int
}

// Infer repairs the function's annotated block weights into a consistent
// flow and derives edge weights. Blocks with HasWeight are treated as
// measurements; others are free. On return every reachable block has
// HasWeight set and Term.EdgeW parallel to its successors, and flow
// conservation holds (inflow == block weight == outflow, modulo the
// virtual entry/exit).
func Infer(f *ir.Function) Result {
	blocks := f.ReachableOrder()
	n := len(blocks)
	if n == 0 {
		return Result{}
	}
	idx := make(map[*ir.Block]int, n)
	for i, b := range blocks {
		idx[b] = i
	}

	// Scale weights down so cycle canceling converges in few iterations.
	var maxW uint64
	for _, b := range blocks {
		if b.HasWeight && b.Weight > maxW {
			maxW = b.Weight
		}
	}
	scale := uint64(1)
	for maxW/scale > 1<<16 {
		scale *= 2
	}

	inNode := func(i int) int { return 2 * i }
	outNode := func(i int) int { return 2*i + 1 }
	S, T := 2*n, 2*n+1
	g := newMCF(2*n + 2)

	// Measurement arcs.
	type arcRef struct{ node, i int }
	blockArcs := make([][]arcRef, n)
	for i, b := range blocks {
		w := int64(b.Weight / scale)
		switch {
		case b.HasWeight && w > 0:
			n1, a1 := g.addArc(inNode(i), outNode(i), w, costReward)
			n2, a2 := g.addArc(inNode(i), outNode(i), infCap, costExceed)
			blockArcs[i] = []arcRef{{n1, a1}, {n2, a2}}
		case b.HasWeight:
			n1, a1 := g.addArc(inNode(i), outNode(i), infCap, costColdUse)
			blockArcs[i] = []arcRef{{n1, a1}}
		default:
			n1, a1 := g.addArc(inNode(i), outNode(i), infCap, 0)
			blockArcs[i] = []arcRef{{n1, a1}}
		}
	}

	// CFG edge arcs.
	type edgeKey struct{ b, s int }
	edgeArcs := map[edgeKey]arcRef{}
	for i, b := range blocks {
		for si, s := range b.Term.Succs {
			j, ok := idx[s]
			if !ok {
				continue
			}
			nn, ai := g.addArc(outNode(i), inNode(j), infCap, costEdge)
			edgeArcs[edgeKey{i, si}] = arcRef{nn, ai}
			_ = j
		}
	}

	// Virtual source/sink and the circulation-closing arc.
	g.addArc(S, inNode(0), infCap, 0)
	for i, b := range blocks {
		if b.Term.Kind == ir.TermReturn {
			g.addArc(outNode(i), T, infCap, 0)
		}
	}
	g.addArc(T, S, infCap, 0)

	res := Result{Augmentations: g.cancelNegativeCycles()}

	// Read back flows.
	for i, b := range blocks {
		var flow int64
		for _, ar := range blockArcs[i] {
			flow += g.arcs[ar.node][ar.i].flow
		}
		w := uint64(flow) * scale
		if !b.HasWeight || b.Weight != w {
			res.Adjusted++
		}
		b.Weight = w
		b.HasWeight = true
		b.Term.EnsureEdgeWeights()
		for si := range b.Term.Succs {
			if ar, ok := edgeArcs[edgeKey{i, si}]; ok {
				b.Term.EdgeW[si] = uint64(g.arcs[ar.node][ar.i].flow) * scale
			}
		}
	}
	return res
}

// InferProgram runs Infer on every function that carries any profile
// weights, returning the total number of adjusted blocks.
func InferProgram(p *ir.Program) int {
	adjusted := 0
	for _, f := range p.Functions() {
		any := false
		for _, b := range f.Blocks {
			if b.HasWeight {
				any = true
				break
			}
		}
		if any {
			adjusted += Infer(f).Adjusted
		}
	}
	return adjusted
}

// CheckConsistency verifies flow conservation on a function whose weights
// and edge weights were produced by Infer: for every reachable block, the
// sum of outgoing edge weights equals the block weight (returns the number
// of violations; exits contribute their weight to the virtual sink).
func CheckConsistency(f *ir.Function) int {
	violations := 0
	blocks := f.ReachableOrder()
	inFlow := map[*ir.Block]uint64{}
	for _, b := range blocks {
		for si, s := range b.Term.Succs {
			if si < len(b.Term.EdgeW) {
				inFlow[s] += b.Term.EdgeW[si]
			}
		}
	}
	for i, b := range blocks {
		if len(b.Term.Succs) > 0 {
			var out uint64
			for _, w := range b.Term.EdgeW {
				out += w
			}
			if out != b.Weight {
				violations++
			}
		}
		// Non-entry blocks receive all their flow via CFG edges; the entry
		// additionally receives virtual-source flow and so may exceed.
		if i > 0 && inFlow[b] != b.Weight {
			violations++
		}
	}
	return violations
}
