package inference

import (
	"math/rand"
	"testing"

	"csspgo/internal/ir"
)

// diamond builds entry→{left,right}→join→ret with given measured weights
// (use ^uint64(0) to leave a block unmeasured).
func diamond(t testing.TB, wEntry, wLeft, wRight, wJoin uint64) *ir.Function {
	t.Helper()
	f := ir.NewFunction("d", []string{"a"})
	b0 := f.Entry()
	b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock()
	cond := f.NewReg()
	b0.Instrs = append(b0.Instrs, ir.Instr{Op: ir.OpBin, BinKind: ir.BinGt, Dst: cond, A: 0, B: 0})
	b0.Term = ir.Terminator{Kind: ir.TermBranch, Cond: cond, Succs: []*ir.Block{b1, b2}}
	b1.Term = ir.Terminator{Kind: ir.TermJump, Succs: []*ir.Block{b3}}
	b2.Term = ir.Terminator{Kind: ir.TermJump, Succs: []*ir.Block{b3}}
	b3.Term = ir.Terminator{Kind: ir.TermReturn, Val: ir.NoReg}
	set := func(b *ir.Block, w uint64) {
		if w != ^uint64(0) {
			b.Weight = w
			b.HasWeight = true
		}
	}
	set(b0, wEntry)
	set(b1, wLeft)
	set(b2, wRight)
	set(b3, wJoin)
	f.RebuildCFG()
	return f
}

func TestInferConsistentInputUnchanged(t *testing.T) {
	f := diamond(t, 100, 70, 30, 100)
	Infer(f)
	if v := CheckConsistency(f); v != 0 {
		t.Fatalf("consistency violations: %d\n%s", v, f)
	}
	if f.Blocks[0].Weight != 100 || f.Blocks[1].Weight != 70 || f.Blocks[2].Weight != 30 {
		t.Fatalf("consistent weights should be preserved: %s", f)
	}
	if f.Blocks[0].Term.EdgeW[0] != 70 || f.Blocks[0].Term.EdgeW[1] != 30 {
		t.Fatalf("edge weights: %v", f.Blocks[0].Term.EdgeW)
	}
}

func TestInferRepairsInconsistentCounts(t *testing.T) {
	// Arms sum to 90, join says 100, entry says 100: sampling noise.
	f := diamond(t, 100, 60, 30, 100)
	res := Infer(f)
	if v := CheckConsistency(f); v != 0 {
		t.Fatalf("violations: %d\n%s", v, f)
	}
	if res.Adjusted == 0 {
		t.Fatal("inference should have adjusted something")
	}
	// Arms must now sum to the entry/join flow.
	sum := f.Blocks[1].Weight + f.Blocks[2].Weight
	if sum != f.Blocks[0].Weight || sum != f.Blocks[3].Weight {
		t.Fatalf("arms %d+%d must equal entry %d and join %d",
			f.Blocks[1].Weight, f.Blocks[2].Weight, f.Blocks[0].Weight, f.Blocks[3].Weight)
	}
}

func TestInferFillsUnknownBlocks(t *testing.T) {
	f := diamond(t, 100, ^uint64(0), 30, 100)
	Infer(f)
	if v := CheckConsistency(f); v != 0 {
		t.Fatalf("violations: %d\n%s", v, f)
	}
	if f.Blocks[1].Weight != 70 {
		t.Fatalf("unknown arm should get residual flow 70, got %d", f.Blocks[1].Weight)
	}
}

func TestInferLoop(t *testing.T) {
	// entry(10) → head(1000) ⇄ body(990) ; head → exit(10)
	f := ir.NewFunction("loop", []string{"n"})
	b0 := f.Entry()
	head, body, exit := f.NewBlock(), f.NewBlock(), f.NewBlock()
	cond := f.NewReg()
	b0.Term = ir.Terminator{Kind: ir.TermJump, Succs: []*ir.Block{head}}
	head.Instrs = append(head.Instrs, ir.Instr{Op: ir.OpBin, BinKind: ir.BinLt, Dst: cond, A: 0, B: 0})
	head.Term = ir.Terminator{Kind: ir.TermBranch, Cond: cond, Succs: []*ir.Block{body, exit}}
	body.Term = ir.Terminator{Kind: ir.TermJump, Succs: []*ir.Block{head}}
	exit.Term = ir.Terminator{Kind: ir.TermReturn, Val: ir.NoReg}
	for b, w := range map[*ir.Block]uint64{b0: 10, head: 1000, body: 985, exit: 10} {
		b.Weight = w
		b.HasWeight = true
	}
	f.RebuildCFG()
	Infer(f)
	if v := CheckConsistency(f); v != 0 {
		t.Fatalf("violations: %d\n%s", v, f)
	}
	if f.Blocks[1].Weight < 900 {
		t.Fatalf("loop head flow collapsed: %s", f)
	}
	// head = entry inflow + backedge.
	if f.Blocks[0].Weight+bodyW(f) != f.Blocks[1].Weight {
		t.Fatalf("loop conservation broken: %s", f)
	}
}

func bodyW(f *ir.Function) uint64 { return f.Blocks[2].Weight }

func TestInferZeroSampledColdPath(t *testing.T) {
	// Right arm sampled zero: flow should route left.
	f := diamond(t, 100, ^uint64(0), 0, 100)
	Infer(f)
	if v := CheckConsistency(f); v != 0 {
		t.Fatalf("violations: %d", v)
	}
	if f.Blocks[2].Weight != 0 {
		t.Fatalf("cold arm should stay 0, got %d", f.Blocks[2].Weight)
	}
	if f.Blocks[1].Weight != 100 {
		t.Fatalf("hot arm should carry all flow, got %d", f.Blocks[1].Weight)
	}
}

func TestInferLargeWeightsScale(t *testing.T) {
	f := diamond(t, 10_000_000, 7_000_000, 2_000_000, 10_000_000)
	res := Infer(f)
	if v := CheckConsistency(f); v != 0 {
		t.Fatalf("violations: %d", v)
	}
	if res.Augmentations > 5000 {
		t.Fatalf("scaling failed, %d augmentations", res.Augmentations)
	}
	if f.Blocks[0].Weight < 9_000_000 {
		t.Fatalf("scaled weights lost magnitude: %d", f.Blocks[0].Weight)
	}
}

func TestInferRandomCFGsAlwaysConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		f := randomCFG(rng, 3+rng.Intn(10))
		InferProgram(progOf(f))
		if v := CheckConsistency(f); v != 0 {
			t.Fatalf("trial %d: %d violations\n%s", trial, v, f)
		}
	}
}

func progOf(f *ir.Function) *ir.Program {
	p := ir.NewProgram()
	p.AddFunc(f)
	return p
}

// randomCFG builds a random reducible-ish CFG with noisy weights.
func randomCFG(rng *rand.Rand, n int) *ir.Function {
	f := ir.NewFunction("r", []string{"a"})
	blocks := []*ir.Block{f.Entry()}
	for i := 1; i < n; i++ {
		blocks = append(blocks, f.NewBlock())
	}
	cond := f.NewReg()
	blocks[0].Instrs = append(blocks[0].Instrs, ir.Instr{Op: ir.OpBin, BinKind: ir.BinLt, Dst: cond, A: 0, B: 0})
	for i, b := range blocks {
		if i == n-1 {
			b.Term = ir.Terminator{Kind: ir.TermReturn, Val: ir.NoReg}
			continue
		}
		// Forward edges; occasionally a back edge to make loops.
		t1 := blocks[i+1]
		if rng.Intn(3) == 0 {
			t2 := blocks[rng.Intn(n)]
			b.Term = ir.Terminator{Kind: ir.TermBranch, Cond: cond, Succs: []*ir.Block{t1, t2}}
		} else {
			b.Term = ir.Terminator{Kind: ir.TermJump, Succs: []*ir.Block{t1}}
		}
		if rng.Intn(2) == 0 {
			b.Weight = uint64(rng.Intn(1000))
			b.HasWeight = true
		}
	}
	f.RebuildCFG()
	return f
}

func TestCheckConsistencyDetectsViolations(t *testing.T) {
	f := diamond(t, 100, 70, 30, 100)
	Infer(f)
	f.Blocks[1].Weight = 999 // corrupt
	if CheckConsistency(f) == 0 {
		t.Fatal("checker must notice corruption")
	}
}
