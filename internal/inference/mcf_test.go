package inference

import "testing"

// Unit tests of the min-cost-circulation engine on hand-built graphs.

func TestCancelNegativeCyclesSimple(t *testing.T) {
	// 0 → 1 (cap 10, cost -5), 1 → 0 (cap 10, cost 1): each unit around
	// the cycle gains 4; the engine must saturate it.
	g := newMCF(2)
	n1, a1 := g.addArc(0, 1, 10, -5)
	g.addArc(1, 0, 10, 1)
	iters := g.cancelNegativeCycles()
	if iters == 0 {
		t.Fatal("no cycles canceled")
	}
	if got := g.arcs[n1][a1].flow; got != 10 {
		t.Fatalf("rewarding arc flow = %d, want 10 (saturated)", got)
	}
}

func TestCancelNegativeCyclesStopsAtOptimum(t *testing.T) {
	// Reward arc capacity 5, return path cost 3 each: profitable (−10+3<0)
	// only through the cheap return; the expensive return (cost 20) must
	// stay unused.
	g := newMCF(3)
	_, _ = g.addArc(0, 1, 5, -10)
	nCheap, aCheap := g.addArc(1, 0, 3, 3)
	nExp, aExp := g.addArc(1, 2, 100, 10)
	g.addArc(2, 0, 100, 10)
	g.cancelNegativeCycles()
	if got := g.arcs[nCheap][aCheap].flow; got != 3 {
		t.Fatalf("cheap return flow = %d, want 3", got)
	}
	// Expensive path: -10+10+10 = +10 per unit → unused.
	if got := g.arcs[nExp][aExp].flow; got != 0 {
		t.Fatalf("expensive return used: %d", got)
	}
}

func TestNoNegativeCyclesNoFlow(t *testing.T) {
	g := newMCF(3)
	g.addArc(0, 1, 10, 1)
	g.addArc(1, 2, 10, 1)
	g.addArc(2, 0, 10, 1)
	if iters := g.cancelNegativeCycles(); iters != 0 {
		t.Fatalf("positive-cost cycle canceled %d times", iters)
	}
}

func TestInferEmptyFunctionSafe(t *testing.T) {
	// A function with one block and no weights must not crash.
	f := diamond(t, ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0))
	res := Infer(f)
	if v := CheckConsistency(f); v != 0 {
		t.Fatalf("violations on unweighted function: %d", v)
	}
	_ = res
}

func TestInferIdempotent(t *testing.T) {
	f := diamond(t, 100, 60, 30, 100)
	Infer(f)
	snapshot := f.String()
	res := Infer(f)
	if f.String() != snapshot {
		t.Fatal("second inference changed a consistent profile")
	}
	if res.Adjusted != 0 {
		t.Fatalf("second inference adjusted %d blocks", res.Adjusted)
	}
}
