// Package inference implements profile inference: repairing sampled,
// possibly inconsistent basic-block counts into a flow-consistent profile
// (block and edge counts obeying conservation), in the spirit of the
// minimum-cost-flow approaches the paper's evaluation enables for all PGO
// variants (Levin et al. [9], profi [10]).
//
// The formulation: each block contributes a "measurement arc" that rewards
// routing flow up to the measured count and charges for exceeding it;
// CFG edges are free arcs; a virtual source feeds the entry and every
// exit drains to a virtual sink, which ties back to the source so the
// optimum is a minimum-cost circulation. Negative-cycle canceling solves
// the circulation exactly on these small graphs.
package inference

import "math"

const (
	infCap = int64(math.MaxInt64 / 4)

	// Cost model (per unit of flow).
	costReward  = -10 // matching a measured unit of block weight
	costExceed  = 3   // pushing a block above its measurement
	costColdUse = 6   // routing through a sampled-zero block
	costEdge    = 0   // CFG edge traversal
)

type arc struct {
	to   int
	cap  int64
	cost int64
	flow int64
	rev  int // index of reverse arc in graph[to]
}

type mcfGraph struct {
	arcs [][]arc
}

func newMCF(n int) *mcfGraph { return &mcfGraph{arcs: make([][]arc, n)} }

// addArc adds a directed arc and its residual twin; returns (node, index)
// for later flow reads.
func (g *mcfGraph) addArc(from, to int, cap, cost int64) (int, int) {
	g.arcs[from] = append(g.arcs[from], arc{to: to, cap: cap, cost: cost, rev: len(g.arcs[to])})
	g.arcs[to] = append(g.arcs[to], arc{to: from, cap: 0, cost: -cost, rev: len(g.arcs[from]) - 1})
	return from, len(g.arcs[from]) - 1
}

// cancelNegativeCycles runs Bellman-Ford repeatedly, augmenting along any
// negative-cost residual cycle until none remain. Returns the number of
// augmentations (for tests).
func (g *mcfGraph) cancelNegativeCycles() int {
	n := len(g.arcs)
	iterations := 0
	for {
		dist := make([]int64, n)
		parentNode := make([]int, n)
		parentArc := make([]int, n)
		for i := range parentNode {
			parentNode[i] = -1
		}
		var cycleNode = -1
		for round := 0; round < n; round++ {
			improved := false
			for u := 0; u < n; u++ {
				for ai := range g.arcs[u] {
					a := &g.arcs[u][ai]
					if a.cap-a.flow <= 0 {
						continue
					}
					if dist[u]+a.cost < dist[a.to] {
						dist[a.to] = dist[u] + a.cost
						parentNode[a.to] = u
						parentArc[a.to] = ai
						improved = true
						if round == n-1 {
							cycleNode = a.to
						}
					}
				}
			}
			if !improved {
				break
			}
		}
		if cycleNode < 0 {
			return iterations
		}
		// Walk back n steps to land inside the cycle.
		v := cycleNode
		for i := 0; i < n; i++ {
			v = parentNode[v]
		}
		// Extract the cycle and find the bottleneck.
		start := v
		bottleneck := infCap
		u := start
		for {
			p, ai := parentNode[u], parentArc[u]
			a := &g.arcs[p][ai]
			if a.cap-a.flow < bottleneck {
				bottleneck = a.cap - a.flow
			}
			u = p
			if u == start {
				break
			}
		}
		if bottleneck <= 0 {
			return iterations
		}
		// Augment around the cycle.
		u = start
		for {
			p, ai := parentNode[u], parentArc[u]
			a := &g.arcs[p][ai]
			a.flow += bottleneck
			g.arcs[a.to][a.rev].flow -= bottleneck
			u = p
			if u == start {
				break
			}
		}
		iterations++
		if iterations > 10000 {
			return iterations // safety valve; near-optimal is fine
		}
	}
}
