// Package drift is the fault-injection half of the stale-profile work: it
// manufactures the failure modes the degradation ladder must survive.
// Source mutations model a developer editing code between profiling and
// compiling (the profile goes stale); profile corruptions (corrupt.go) model
// damaged profile artifacts. Mutations are deterministic in their seed.
// Most preserve semantics exactly; DeleteStmts may not (removed calls can
// have effects), but every variant the harness compares — baseline, fresh
// profile, stale profile — builds and runs the *same* mutated program, so
// the comparison stays apples-to-apples either way.
package drift

import (
	"fmt"

	"csspgo/internal/source"
)

// Mutation is one source-edit fault class.
type Mutation uint8

// Mutation kinds.
const (
	// InsertStmts inserts dead `if (0) { var __driftN = 1; }` guards into
	// function bodies: extra blocks and edges, no runtime effect.
	InsertStmts Mutation = iota
	// DeleteStmts deletes call-for-effect statements (`f(x);`), removing
	// call sites and their probes.
	DeleteStmts
	// AddBranches wraps a leaf statement in `if (1) { ... }`: a new branch
	// that always executes, preserving semantics while reshaping the CFG.
	AddBranches
	// RemoveBranches unwraps else-less `if` statements, splicing their body
	// into the parent block (only when provably scope- and loop-safe).
	RemoveBranches
	// ReorderFuncs reverses the function definition order. CFGs and
	// checksums are untouched — this probes the exact-match path's
	// robustness to layout churn, not the matcher.
	ReorderFuncs
)

// All returns every mutation kind, in declaration order.
func All() []Mutation {
	return []Mutation{InsertStmts, DeleteStmts, AddBranches, RemoveBranches, ReorderFuncs}
}

func (m Mutation) String() string {
	switch m {
	case InsertStmts:
		return "insert-stmts"
	case DeleteStmts:
		return "delete-stmts"
	case AddBranches:
		return "add-branches"
	case RemoveBranches:
		return "remove-branches"
	case ReorderFuncs:
		return "reorder-funcs"
	default:
		return fmt.Sprintf("mutation(%d)", uint8(m))
	}
}

// ChangesCFG says whether the mutation alters function CFGs (and hence
// their checksums). ReorderFuncs does not — it drifts only the layout.
func (m Mutation) ChangesCFG() bool { return m != ReorderFuncs }

// rng is a splitmix64 generator: tiny, deterministic, seed-stable across
// platforms.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Apply returns a deep-copied file set with the mutation applied. The input
// files are never modified. main is left untouched by body mutations so the
// harness's entry point stays comparable.
func Apply(files []*source.File, m Mutation, seed uint64) []*source.File {
	out := make([]*source.File, len(files))
	for i, f := range files {
		out[i] = cloneFile(f)
	}
	r := &rng{s: seed ^ uint64(m)<<56}
	mut := &mutator{r: r, kind: m}
	for _, f := range out {
		if m == ReorderFuncs {
			for i, j := 0, len(f.Funcs)-1; i < j; i, j = i+1, j-1 {
				f.Funcs[i], f.Funcs[j] = f.Funcs[j], f.Funcs[i]
			}
			continue
		}
		for _, fn := range f.Funcs {
			if fn.Name == "main" {
				continue
			}
			mut.mutateFunc(fn)
		}
	}
	return out
}

type mutator struct {
	r       *rng
	kind    Mutation
	inserts int // unique suffix for inserted var names
}

func (m *mutator) mutateFunc(fn *source.FuncDecl) {
	switch m.kind {
	case InsertStmts:
		m.insertDeadGuard(fn.Body)
	case DeleteStmts:
		m.deleteOneCallStmt(fn.Body)
	case AddBranches:
		m.wrapOneLeafStmt(fn.Body)
	case RemoveBranches:
		m.unwrapOneIf(fn.Body)
	}
}

// insertDeadGuard drops an `if (0) { var __driftN = 1; }` at a random
// position of the top-level body (before any trailing return, so the new
// blocks stay reachable and CFG-relevant).
func (m *mutator) insertDeadGuard(body *source.BlockStmt) {
	limit := len(body.Stmts)
	if limit > 0 {
		if _, ret := body.Stmts[limit-1].(*source.ReturnStmt); ret {
			limit--
		}
	}
	pos := m.r.intn(limit + 1)
	line := body.Line
	m.inserts++
	guard := &source.IfStmt{
		Cond: &source.NumExpr{Val: 0, Line: line},
		Then: &source.BlockStmt{Line: line, Stmts: []source.Stmt{
			&source.VarStmt{
				Name: fmt.Sprintf("__drift%d", m.inserts),
				Init: &source.NumExpr{Val: 1, Line: line},
				Line: line,
			},
		}},
		Line: line,
	}
	body.Stmts = append(body.Stmts[:pos], append([]source.Stmt{guard}, body.Stmts[pos:]...)...)
}

// deleteOneCallStmt removes one call-for-effect statement. Only ExprStmts
// whose expression is a call are candidates: they bind no names and produce
// no value, so removal cannot break lowering (it may change behavior through
// global stores inside the callee — acceptable, since every variant the
// harness compares runs the same mutated program).
func (m *mutator) deleteOneCallStmt(body *source.BlockStmt) {
	var sites []*source.BlockStmt
	var idxs []int
	forEachBlock(body, func(b *source.BlockStmt) {
		for i, s := range b.Stmts {
			if es, ok := s.(*source.ExprStmt); ok {
				switch es.X.(type) {
				case *source.CallExpr, *source.IndirectCallExpr:
					sites = append(sites, b)
					idxs = append(idxs, i)
				}
			}
		}
	})
	if len(sites) == 0 {
		return
	}
	k := m.r.intn(len(sites))
	b, i := sites[k], idxs[k]
	b.Stmts = append(b.Stmts[:i], b.Stmts[i+1:]...)
}

// wrapOneLeafStmt wraps one assignment/store/call statement in `if (1)`:
// the statement still always runs, but the CFG gains a branch and a join.
func (m *mutator) wrapOneLeafStmt(body *source.BlockStmt) {
	var sites []*source.BlockStmt
	var idxs []int
	forEachBlock(body, func(b *source.BlockStmt) {
		for i, s := range b.Stmts {
			switch s.(type) {
			case *source.AssignStmt, *source.StoreStmt, *source.ExprStmt:
				sites = append(sites, b)
				idxs = append(idxs, i)
			}
		}
	})
	if len(sites) == 0 {
		return
	}
	k := m.r.intn(len(sites))
	b, i := sites[k], idxs[k]
	inner := b.Stmts[i]
	line := inner.Pos()
	b.Stmts[i] = &source.IfStmt{
		Cond: &source.NumExpr{Val: 1, Line: line},
		Then: &source.BlockStmt{Line: line, Stmts: []source.Stmt{inner}},
		Line: line,
	}
}

// unwrapOneIf splices one else-less if's body into its parent. Bodies
// containing declarations are skipped (splicing could collide names or leak
// them into the parent scope); continues/breaks are position-sensitive but
// stay legal since the statement keeps its loop nesting.
func (m *mutator) unwrapOneIf(body *source.BlockStmt) {
	var sites []*source.BlockStmt
	var idxs []int
	forEachBlock(body, func(b *source.BlockStmt) {
		for i, s := range b.Stmts {
			ifs, ok := s.(*source.IfStmt)
			if !ok || ifs.Else != nil {
				continue
			}
			if blockDeclares(ifs.Then) {
				continue
			}
			sites = append(sites, b)
			idxs = append(idxs, i)
		}
	})
	if len(sites) == 0 {
		return
	}
	k := m.r.intn(len(sites))
	b, i := sites[k], idxs[k]
	ifs := b.Stmts[i].(*source.IfStmt)
	spliced := make([]source.Stmt, 0, len(b.Stmts)-1+len(ifs.Then.Stmts))
	spliced = append(spliced, b.Stmts[:i]...)
	spliced = append(spliced, ifs.Then.Stmts...)
	spliced = append(spliced, b.Stmts[i+1:]...)
	b.Stmts = spliced
}

// blockDeclares reports whether the subtree declares any local.
func blockDeclares(b *source.BlockStmt) bool {
	found := false
	forEachBlock(b, func(inner *source.BlockStmt) {
		for _, s := range inner.Stmts {
			if _, ok := s.(*source.VarStmt); ok {
				found = true
			}
		}
	})
	// ForStmt inits declare too.
	forEachBlock(b, func(inner *source.BlockStmt) {
		for _, s := range inner.Stmts {
			if fs, ok := s.(*source.ForStmt); ok {
				if _, ok := fs.Init.(*source.VarStmt); ok {
					found = true
				}
			}
		}
	})
	return found
}

// forEachBlock visits every block in a statement subtree, outermost first.
func forEachBlock(b *source.BlockStmt, visit func(*source.BlockStmt)) {
	if b == nil {
		return
	}
	visit(b)
	for _, s := range b.Stmts {
		switch s := s.(type) {
		case *source.BlockStmt:
			forEachBlock(s, visit)
		case *source.IfStmt:
			forEachBlock(s.Then, visit)
			if es, ok := s.Else.(*source.BlockStmt); ok {
				forEachBlock(es, visit)
			} else if ei, ok := s.Else.(*source.IfStmt); ok {
				forEachBlock(&source.BlockStmt{Stmts: []source.Stmt{ei}, Line: ei.Line}, visit)
			}
		case *source.WhileStmt:
			forEachBlock(s.Body, visit)
		case *source.ForStmt:
			forEachBlock(s.Body, visit)
		case *source.SwitchStmt:
			for _, cb := range s.Bodies {
				forEachBlock(cb, visit)
			}
			forEachBlock(s.Default, visit)
		}
	}
}

// cloneFile deep-copies the statement structure of a file. Expressions are
// shared: no mutation rewrites an expression in place.
func cloneFile(f *source.File) *source.File {
	nf := *f
	nf.Funcs = make([]*source.FuncDecl, len(f.Funcs))
	for i, fn := range f.Funcs {
		c := *fn
		c.Body = cloneBlock(fn.Body)
		nf.Funcs[i] = &c
	}
	return &nf
}

func cloneBlock(b *source.BlockStmt) *source.BlockStmt {
	if b == nil {
		return nil
	}
	nb := *b
	nb.Stmts = make([]source.Stmt, len(b.Stmts))
	for i, s := range b.Stmts {
		nb.Stmts[i] = cloneStmt(s)
	}
	return &nb
}

func cloneStmt(s source.Stmt) source.Stmt {
	switch s := s.(type) {
	case *source.BlockStmt:
		return cloneBlock(s)
	case *source.IfStmt:
		c := *s
		c.Then = cloneBlock(s.Then)
		if s.Else != nil {
			c.Else = cloneStmt(s.Else)
		}
		return &c
	case *source.WhileStmt:
		c := *s
		c.Body = cloneBlock(s.Body)
		return &c
	case *source.ForStmt:
		c := *s
		if s.Init != nil {
			c.Init = cloneStmt(s.Init)
		}
		if s.Post != nil {
			c.Post = cloneStmt(s.Post)
		}
		c.Body = cloneBlock(s.Body)
		return &c
	case *source.SwitchStmt:
		c := *s
		c.Values = append([]int64(nil), s.Values...)
		c.Bodies = make([]*source.BlockStmt, len(s.Bodies))
		for i, cb := range s.Bodies {
			c.Bodies[i] = cloneBlock(cb)
		}
		c.Default = cloneBlock(s.Default)
		return &c
	case *source.VarStmt:
		c := *s
		return &c
	case *source.AssignStmt:
		c := *s
		return &c
	case *source.StoreStmt:
		c := *s
		return &c
	case *source.ReturnStmt:
		c := *s
		return &c
	case *source.BreakStmt:
		c := *s
		return &c
	case *source.ContinueStmt:
		c := *s
		return &c
	case *source.ExprStmt:
		c := *s
		return &c
	default:
		return s
	}
}
