package drift

import (
	"csspgo/internal/profdata"
)

// PoisonCounts returns a deep-copied profile whose sample distribution has
// been adversarially skewed while staying structurally valid: every body
// count is inverted against the profile's hottest count (hot paths read
// cold, cold paths read hot), and the originally coldest record is then
// amplified until it dominates the total. It models a collector with
// corrupted counters — the artifact parses, checksums match, but the
// weight distribution shares almost nothing with reality. A promotion gate
// worth having must refuse it; `csspgo fleet -inject poison-counts` uses it
// to prove the gate fires.
func PoisonCounts(p *profdata.Profile) *profdata.Profile {
	out := p.Clone()

	// The hottest single body count anywhere, for the inversion ceiling.
	var max uint64
	for _, fp := range allRecords(out) {
		for _, v := range fp.Blocks {
			if v > max {
				max = v
			}
		}
	}
	if max == 0 {
		return out
	}

	// Remember the coldest record (by pre-inversion total) — the one a
	// truthful profile says matters least.
	var coldest *profdata.FunctionProfile
	for _, fp := range allRecords(out) {
		if fp.TotalSamples == 0 {
			continue
		}
		if coldest == nil || fp.TotalSamples < coldest.TotalSamples {
			coldest = fp
		}
	}

	// Invert every count: v -> max - v + 1 keeps all keys present and
	// nonzero, so the poisoned profile decodes and annotates cleanly.
	for _, fp := range allRecords(out) {
		invert(fp, max)
	}

	// Amplify the ex-coldest record until it carries ~99% of the weight.
	if coldest != nil && coldest.TotalSamples > 0 {
		var rest uint64
		for _, fp := range allRecords(out) {
			if fp != coldest {
				rest += fp.TotalSamples
			}
		}
		if rest > 0 {
			coldest.Scale(99*rest, coldest.TotalSamples)
		}
	}
	return out
}

// allRecords iterates base and context records alike; poisoning must skew
// both, since the overlap gate weighs their union.
func allRecords(p *profdata.Profile) []*profdata.FunctionProfile {
	out := make([]*profdata.FunctionProfile, 0, len(p.Funcs)+len(p.Contexts))
	for _, name := range p.SortedFuncNames() {
		out = append(out, p.Funcs[name])
	}
	for _, key := range p.SortedContextKeys() {
		out = append(out, p.Contexts[key])
	}
	return out
}

// invert maps every count v to max-v+1 and rebuilds the record's totals.
func invert(fp *profdata.FunctionProfile, max uint64) {
	fp.TotalSamples = 0
	for loc, v := range fp.Blocks {
		fp.Blocks[loc] = max - v + 1
		fp.TotalSamples += fp.Blocks[loc]
	}
	for _, m := range fp.Calls {
		for callee, v := range m {
			if v > max {
				v = max
			}
			m[callee] = max - v + 1
		}
	}
	if fp.HeadSamples > 0 {
		fp.HeadSamples = max - fp.HeadSamples%max
	}
}
