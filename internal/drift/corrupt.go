package drift

import (
	"bytes"
	"fmt"
)

// Corruption is one profile-artifact fault class.
type Corruption uint8

// Corruption kinds.
const (
	// TruncateTail keeps only a prefix of the file — a profile cut short by
	// a crashed writer or a partial transfer.
	TruncateTail Corruption = iota
	// FlipBits flips random bits past the header — storage rot.
	FlipBits
	// DropRecord removes one whole function/context record (text format) or
	// a byte window (binary, which has no record framing to splice at).
	DropRecord
	// DupRecord duplicates one record (text) or a byte window (binary) — a
	// botched shard merge.
	DupRecord
)

// AllCorruptions returns every corruption kind, in declaration order.
func AllCorruptions() []Corruption {
	return []Corruption{TruncateTail, FlipBits, DropRecord, DupRecord}
}

func (c Corruption) String() string {
	switch c {
	case TruncateTail:
		return "truncate-tail"
	case FlipBits:
		return "flip-bits"
	case DropRecord:
		return "drop-record"
	case DupRecord:
		return "dup-record"
	default:
		return fmt.Sprintf("corruption(%d)", uint8(c))
	}
}

// Corrupt returns a damaged copy of an encoded profile (text or binary —
// detected by the CSPF magic). The input is never modified, and the output
// is deterministic in the seed.
func Corrupt(data []byte, c Corruption, seed uint64) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 {
		return out
	}
	r := &rng{s: seed ^ uint64(c)<<48}
	binary := bytes.HasPrefix(out, []byte("CSPF"))
	switch c {
	case TruncateTail:
		keep := len(out) * 2 / 3
		if keep < 1 {
			keep = 1
		}
		out = out[:keep]
	case FlipBits:
		// Spare the first bytes so the format stays detectable: the fault
		// under test is damaged records, not a missing header.
		lo := 16
		if lo >= len(out) {
			lo = len(out) / 2
		}
		for i := 0; i < 8 && lo < len(out); i++ {
			pos := lo + r.intn(len(out)-lo)
			out[pos] ^= byte(1 << r.intn(8))
		}
	case DropRecord:
		if binary {
			out = dropWindow(out, r)
		} else {
			out = editTextSection(out, r, func(section []byte) []byte { return nil })
		}
	case DupRecord:
		if binary {
			out = dupWindow(out, r)
		} else {
			out = editTextSection(out, r, func(section []byte) []byte {
				return append(append([]byte(nil), section...), section...)
			})
		}
	}
	return out
}

// editTextSection applies edit to one randomly chosen section (a "[...]"
// header plus its following lines) of a text profile.
func editTextSection(data []byte, r *rng, edit func([]byte) []byte) []byte {
	lines := bytes.SplitAfter(data, []byte("\n"))
	var starts []int
	for i, ln := range lines {
		if bytes.HasPrefix(bytes.TrimSpace(ln), []byte("[")) {
			starts = append(starts, i)
		}
	}
	if len(starts) == 0 {
		return data
	}
	k := r.intn(len(starts))
	begin := starts[k]
	end := len(lines)
	if k+1 < len(starts) {
		end = starts[k+1]
	}
	var section []byte
	for _, ln := range lines[begin:end] {
		section = append(section, ln...)
	}
	var out []byte
	for _, ln := range lines[:begin] {
		out = append(out, ln...)
	}
	out = append(out, edit(section)...)
	for _, ln := range lines[end:] {
		out = append(out, ln...)
	}
	return out
}

// dropWindow deletes a 16-byte window from the record area.
func dropWindow(data []byte, r *rng) []byte {
	const w = 16
	if len(data) <= 8+w {
		return data[:len(data)/2]
	}
	pos := 8 + r.intn(len(data)-8-w)
	return append(data[:pos:pos], data[pos+w:]...)
}

// dupWindow doubles a 16-byte window in the record area.
func dupWindow(data []byte, r *rng) []byte {
	const w = 16
	if len(data) <= 8+w {
		return append(append([]byte(nil), data...), data...)
	}
	pos := 8 + r.intn(len(data)-8-w)
	out := append([]byte(nil), data[:pos+w]...)
	out = append(out, data[pos:pos+w]...)
	return append(out, data[pos+w:]...)
}
