package drift

import (
	"testing"

	"csspgo/internal/profdata"
	"csspgo/internal/quality"
)

func poisonTestProfile() *profdata.Profile {
	p := profdata.New(profdata.ProbeBased, false)
	for i, n := range []string{"hot", "warm", "cold"} {
		fp := p.FuncProfile(n)
		fp.AddBody(profdata.LocKey{ID: 1}, uint64(1000/(i+1)))
		fp.AddBody(profdata.LocKey{ID: 2}, uint64(400/(i+1)))
		fp.AddCall(profdata.LocKey{ID: 2}, "callee", uint64(100/(i+1)))
		fp.HeadSamples = uint64(50 / (i + 1))
	}
	return p
}

// Poisoned counts must stay structurally valid (same keys, nonzero counts,
// encodes and decodes cleanly) while collapsing the weight distribution far
// enough that the promotion gate's overlap floor fires.
func TestPoisonCountsCollapsesOverlap(t *testing.T) {
	orig := poisonTestProfile()
	bad := PoisonCounts(orig)

	if orig.Funcs["hot"].BodyAt(profdata.LocKey{ID: 1}) != 1000 {
		t.Fatalf("PoisonCounts mutated its input")
	}
	if len(bad.Funcs) != len(orig.Funcs) {
		t.Fatalf("poisoning changed the function set")
	}
	for name, fp := range bad.Funcs {
		for loc, v := range fp.Blocks {
			if v == 0 {
				t.Fatalf("%s %s: zero count after poisoning", name, loc)
			}
		}
	}
	if _, err := profdata.DecodeAny(profdata.EncodeBinary(bad)); err != nil {
		t.Fatalf("poisoned profile does not round-trip: %v", err)
	}

	ov := quality.DiffProfiles(orig, bad).ContextOverlap
	if ov >= 0.5 {
		t.Fatalf("poisoned overlap = %f, want < 0.5 (gate floor)", ov)
	}
	// The ex-coldest function now dominates.
	if bad.Funcs["cold"].TotalSamples < 90*(bad.Funcs["hot"].TotalSamples+bad.Funcs["warm"].TotalSamples) {
		t.Fatalf("coldest function not amplified: %d vs %d/%d",
			bad.Funcs["cold"].TotalSamples, bad.Funcs["hot"].TotalSamples, bad.Funcs["warm"].TotalSamples)
	}
}

// Determinism: poisoning the same profile twice yields identical bytes.
func TestPoisonCountsDeterministic(t *testing.T) {
	a := profdata.EncodeToString(PoisonCounts(poisonTestProfile()))
	b := profdata.EncodeToString(PoisonCounts(poisonTestProfile()))
	if a != b {
		t.Fatalf("PoisonCounts not deterministic")
	}
}

// Degenerate inputs must not panic or divide by zero.
func TestPoisonCountsDegenerate(t *testing.T) {
	empty := profdata.New(profdata.ProbeBased, false)
	if out := PoisonCounts(empty); out.TotalSamples() != 0 {
		t.Fatalf("empty profile grew samples")
	}
	single := profdata.New(profdata.ProbeBased, false)
	single.FuncProfile("only").AddBody(profdata.LocKey{ID: 1}, 7)
	if out := PoisonCounts(single); out.TotalSamples() == 0 {
		t.Fatalf("single-function profile zeroed")
	}
}
