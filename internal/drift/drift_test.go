package drift

import (
	"bytes"
	"testing"

	"csspgo/internal/irgen"
	"csspgo/internal/probe"
	"csspgo/internal/profdata"
	"csspgo/internal/source"
)

const testSrc = `
func helper(x) {
  var t = 0;
  if (x > 10) {
    t = x * 2;
  }
  log(t);
  return t;
}
func log(v) { return v; }
func work(n) {
  var s = 0;
  var i = 0;
  while (i < n) {
    s = s + helper(i);
    i = i + 1;
  }
  return s;
}
func main(a, b) { return work(a) + work(b); }
`

func parse(t *testing.T) []*source.File {
	t.Helper()
	f, err := source.Parse("t.ml", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	return []*source.File{f}
}

// checksums lowers + probes the files and returns per-function checksums.
func checksums(t *testing.T, files []*source.File) map[string]uint64 {
	t.Helper()
	prog, err := irgen.Lower(files...)
	if err != nil {
		t.Fatalf("mutated source no longer lowers: %v", err)
	}
	probe.InsertProgram(prog)
	out := map[string]uint64{}
	for _, f := range prog.Functions() {
		out[f.Name] = f.Checksum
	}
	return out
}

func TestMutationsLowerAndDrift(t *testing.T) {
	files := parse(t)
	base := checksums(t, files)
	for _, m := range All() {
		t.Run(m.String(), func(t *testing.T) {
			mutated := Apply(files, m, 7)
			sums := checksums(t, mutated)
			changed := 0
			for name, sum := range sums {
				if base[name] != sum {
					changed++
				}
			}
			if m.ChangesCFG() && changed == 0 {
				t.Errorf("%s: no checksum drifted", m)
			}
			if !m.ChangesCFG() && changed != 0 {
				t.Errorf("%s: %d checksums drifted but the mutation is layout-only", m, changed)
			}
		})
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	files := parse(t)
	before := checksums(t, parse(t))
	for _, m := range All() {
		Apply(files, m, 3)
	}
	after := checksums(t, files)
	for name, sum := range before {
		if after[name] != sum {
			t.Fatalf("Apply mutated its input: %s changed", name)
		}
	}
}

func TestApplyDeterministic(t *testing.T) {
	files := parse(t)
	for _, m := range All() {
		a := checksums(t, Apply(files, m, 42))
		b := checksums(t, Apply(files, m, 42))
		for name := range a {
			if a[name] != b[name] {
				t.Fatalf("%s: same seed produced different mutations for %s", m, name)
			}
		}
	}
}

// corpusProfile builds a plausible encoded profile for corruption tests.
func corpusProfile() *profdata.Profile {
	p := profdata.New(profdata.ProbeBased, true)
	for _, name := range []string{"main", "work", "helper", "log"} {
		fp := p.FuncProfile(name)
		fp.Checksum = uint64(len(name)) * 977
		fp.HeadSamples = 40
		fp.AddBody(profdata.LocKey{ID: 1}, 100)
		fp.AddBody(profdata.LocKey{ID: 2}, 60)
		fp.AddCall(profdata.LocKey{ID: 3}, "log", 30)
	}
	cp := p.ContextProfile(profdata.NewContext("main", 2, "work"))
	cp.AddBody(profdata.LocKey{ID: 1}, 80)
	return p
}

func TestCorruptionsNeverPanicAndDegrade(t *testing.T) {
	p := corpusProfile()
	encodings := map[string][]byte{
		"text":   []byte(profdata.EncodeToString(p)),
		"binary": profdata.EncodeBinary(p),
	}
	for format, enc := range encodings {
		for _, c := range AllCorruptions() {
			for seed := uint64(0); seed < 8; seed++ {
				name := format + "/" + c.String()
				data := Corrupt(enc, c, seed)
				if bytes.Equal(data, enc) && c != DupRecord {
					t.Errorf("%s seed %d: corruption was a no-op", name, seed)
				}
				// Lenient decode must survive anything Corrupt produces.
				prof, stats, err := profdata.DecodeAnyLenient(data)
				if err != nil {
					// Header destroyed: acceptable only for truncation of
					// tiny inputs; our seeds keep headers, so treat any
					// decode error as unexpected except for TruncateTail.
					if c != TruncateTail {
						t.Errorf("%s seed %d: lenient decode failed: %v", name, seed, err)
					}
					continue
				}
				if prof == nil {
					t.Errorf("%s seed %d: lenient decode returned nil profile", name, seed)
					continue
				}
				// A dropped record must be visible either as a smaller
				// profile or in the skip stats — never silently identical
				// with full trust.
				if c == DropRecord && stats.SkippedRecords == 0 && stats.SkippedLines == 0 &&
					len(prof.Funcs)+len(prof.Contexts) >= len(p.Funcs)+len(p.Contexts) {
					t.Errorf("%s seed %d: dropped record went unnoticed", name, seed)
				}
			}
		}
	}
}

func TestCorruptDeterministic(t *testing.T) {
	enc := []byte(profdata.EncodeToString(corpusProfile()))
	for _, c := range AllCorruptions() {
		if !bytes.Equal(Corrupt(enc, c, 5), Corrupt(enc, c, 5)) {
			t.Fatalf("%s: same seed produced different corruption", c)
		}
	}
}
