package introspect

import (
	"bytes"
	"reflect"
	"testing"

	"csspgo/internal/profdata"
)

// testProfile builds a small CS probe-based profile with both context
// profiles and a flat base residue.
func testProfile() *profdata.Profile {
	p := profdata.New(profdata.ProbeBased, true)
	base := p.FuncProfile("main")
	base.AddBody(profdata.LocKey{ID: 1}, 100)
	base.AddBody(profdata.LocKey{ID: 2}, 60)

	c1 := p.ContextProfile(profdata.NewContext("main", 3, "foo"))
	c1.AddBody(profdata.LocKey{ID: 1}, 60)
	c1.AddBody(profdata.LocKey{ID: 2}, 40)

	c2 := p.ContextProfile(profdata.NewContext("main", 3, "foo", 2, "bar"))
	c2.AddBody(profdata.LocKey{ID: 1}, 40)
	return p
}

func TestFoldedExport(t *testing.T) {
	entries := Folded(testProfile())
	got := string(EncodeFoldedText(entries))
	want := "main 160\nmain:3;foo 100\nmain:3;foo:2;bar 40\n"
	if got != want {
		t.Fatalf("folded export:\n got %q\nwant %q", got, want)
	}
}

func TestFoldedMergesDuplicateStacks(t *testing.T) {
	frames := profdata.Context{{Func: "main", Site: profdata.LocKey{ID: 3}}, {Func: "foo"}}
	entries := canonicalize([]Entry{
		{Frames: frames, Weight: 5},
		{Frames: frames, Weight: 7},
	})
	if len(entries) != 1 || entries[0].Weight != 12 {
		t.Fatalf("merge failed: %+v", entries)
	}
}

func TestTopOrdering(t *testing.T) {
	entries := Folded(testProfile())
	top := Top(entries, 2)
	if len(top) != 2 || top[0].Key() != "main" || top[1].Key() != "main:3;foo" {
		t.Fatalf("top = %+v", top)
	}
	if got := Top(entries, 100); len(got) != len(entries) {
		t.Fatalf("Top over-truncated: %d", len(got))
	}
}

func TestFoldedTextRoundTrip(t *testing.T) {
	entries := Folded(testProfile())
	data := EncodeFoldedText(entries)
	back, err := ParseFoldedText(data)
	if err != nil {
		t.Fatalf("ParseFoldedText: %v", err)
	}
	if !reflect.DeepEqual(entries, back) {
		t.Fatalf("text round trip:\n in  %+v\n out %+v", entries, back)
	}
	// Re-encoding parsed entries must be byte-identical.
	if again := EncodeFoldedText(back); !bytes.Equal(data, again) {
		t.Fatalf("re-encode differs:\n%q\n%q", data, again)
	}
}

func TestFoldedBinaryRoundTrip(t *testing.T) {
	entries := Folded(testProfile())
	data := EncodeFoldedBinary(entries)
	back, err := DecodeFoldedBinary(data)
	if err != nil {
		t.Fatalf("DecodeFoldedBinary: %v", err)
	}
	if !reflect.DeepEqual(entries, back) {
		t.Fatalf("binary round trip:\n in  %+v\n out %+v", entries, back)
	}
	if again := EncodeFoldedBinary(back); !bytes.Equal(data, again) {
		t.Fatalf("binary re-encode differs")
	}
}

func TestParseFoldedTextSkipsCommentsAndBlank(t *testing.T) {
	in := "# comment\n\nmain 10\n\nmain 5\n"
	entries, err := ParseFoldedText([]byte(in))
	if err != nil {
		t.Fatalf("ParseFoldedText: %v", err)
	}
	if len(entries) != 1 || entries[0].Weight != 15 {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestParseFoldedTextErrors(t *testing.T) {
	bad := []string{
		"main",                // no weight
		"main ten",            // bad weight
		"main:x;foo 3",        // bad site
		"main:01;foo 3",       // non-canonical site
		"main:1.0;foo 3",      // zero discriminator
		";foo 3",              // empty frame
		"main;foo 3",          // non-leaf frame missing site
		"main:1;fo o 3 4 5 x", // bad weight token
	}
	for _, in := range bad {
		if _, err := ParseFoldedText([]byte(in)); err == nil {
			t.Errorf("ParseFoldedText(%q) should fail", in)
		}
	}
}

func TestDecodeFoldedBinaryErrors(t *testing.T) {
	entries := Folded(testProfile())
	good := EncodeFoldedBinary(entries)
	bad := [][]byte{
		nil,
		[]byte("nope"),
		good[:len(good)-1],                    // truncated
		append(good[:len(good):len(good)], 0), // trailing byte
	}
	for i, in := range bad {
		if _, err := DecodeFoldedBinary(in); err == nil {
			t.Errorf("case %d: decode should fail", i)
		}
	}
}

func TestFoldedLineBasedProfile(t *testing.T) {
	p := profdata.New(profdata.LineBased, false)
	p.FuncProfile("alpha").AddBody(profdata.LocKey{ID: 2}, 9)
	p.FuncProfile("beta").AddBody(profdata.LocKey{ID: 1}, 4)
	got := string(EncodeFoldedText(Folded(p)))
	if got != "alpha 9\nbeta 4\n" {
		t.Fatalf("flat folded = %q", got)
	}
}
