package introspect

import (
	"bytes"
	"strings"
	"testing"

	"csspgo/internal/obs"
)

func TestRenderPrometheus(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("serve.requests").Add(7)
	reg.Gauge("pipeline.speedup").Set(1.25)
	h := reg.Histogram("serve.swap_latency_ns")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	out := string(RenderPrometheus(reg.Snapshot()))
	for _, want := range []string{
		"# TYPE pipeline_speedup gauge\npipeline_speedup 1.25\n",
		"# TYPE serve_requests counter\nserve_requests 7\n",
		"# TYPE serve_swap_latency_ns summary\n",
		"serve_swap_latency_ns{quantile=\"0.5\"} 63\n",
		"serve_swap_latency_ns{quantile=\"0.95\"} 100\n",
		"serve_swap_latency_ns{quantile=\"0.99\"} 100\n",
		"serve_swap_latency_ns_sum 5050\n",
		"serve_swap_latency_ns_count 100\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Deterministic: same snapshot renders byte-identically.
	if !bytes.Equal(RenderPrometheus(reg.Snapshot()), RenderPrometheus(reg.Snapshot())) {
		t.Fatal("render not deterministic")
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"serve.swap_latency_ns":   "serve_swap_latency_ns",
		"quality.context-overlap": "quality_context_overlap",
		"9lives":                  "_lives",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
