package introspect

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"csspgo/internal/obs"
	"csspgo/internal/profdata"
)

// Served is one atomically-swapped generation of the daemon's artifacts:
// the profile bytes builds fetch, the folded flamegraph export, and the run
// report from the collection that produced them. Everything is rendered at
// swap time, so request handlers only copy bytes — a request can never
// observe a half-updated profile.
type Served struct {
	Name       string // profile name under /profiles/<name>
	Profile    []byte // text-encoded profile
	Folded     []byte // folded-stack flamegraph export
	Report     []byte // csspgo-run-report/v1 JSON (may be nil)
	Generation uint64 // 1 for the first SetProfile, +1 per swap
	SwappedAt  time.Time
}

// RefreshFunc re-collects a profile (and its run report) for the serving
// daemon; `csspgo serve -refresh` calls it on every tick. It must be safe
// for use from the refresh goroutine.
type RefreshFunc func() (*profdata.Profile, *obs.Report, error)

// Server is the continuous-profiling daemon behind `csspgo serve`: it
// holds the current profile generation and exposes it over HTTP
// (datadog-pgo-style — builds pull /profiles/<name>, humans pull
// /flamegraph and /metrics). All serve.* metrics land in the registry the
// server was built with, so /metrics covers both the pipeline and the
// daemon itself.
type Server struct {
	name string
	reg  *obs.Registry

	requests        *obs.Counter
	refreshes       *obs.Counter
	refreshFailures *obs.Counter
	swapLatency     *obs.Histogram

	cur atomic.Pointer[Served]
	gen atomic.Uint64

	// Observability extras, all optional. span parents the daemon's
	// handler/refresh spans; series samples the registry once per refresh;
	// fleetCtx remembers the last traceparent a fleet fetch carried, so
	// refresh spans attribute to the aggregator round that consumed them.
	span    *obs.Span
	series  *obs.TimeSeries
	journal *obs.Journal

	// ohData holds the latest normalized csspgo-overhead/v1 artifact (the
	// refresher delivers one per generation through SetOverhead).
	ohData atomic.Pointer[[]byte]

	ctxMu    sync.Mutex
	fleetCtx obs.SpanContext

	rounds      atomic.Uint64 // refresh attempts (uptime in rounds)
	lastRefresh atomic.Pointer[string]
}

// NewServer returns a daemon serving under the given profile name,
// publishing serve.* metrics into reg (which may already carry pipeline
// metrics; /metrics exposes whatever the registry holds).
func NewServer(name string, reg *obs.Registry) *Server {
	return &Server{
		name:            name,
		reg:             reg,
		requests:        reg.Counter(obs.MServeRequests),
		refreshes:       reg.Counter(obs.MServeRefreshes),
		refreshFailures: reg.Counter(obs.MServeRefreshFailures),
		swapLatency:     reg.Histogram(obs.MServeSwapLatencyNS),
	}
}

// Name returns the served profile name.
func (s *Server) Name() string { return s.name }

// SetTrace parents the daemon's handler and refresh spans under parent
// (typically the trace root). Without it the daemon records no spans.
func (s *Server) SetTrace(parent *obs.Span) { s.span = parent }

// SetTimeSeries installs a bounded time-series store sampled once per
// profile swap (nil disables sampling).
func (s *Server) SetTimeSeries(ts *obs.TimeSeries) { s.series = ts }

// TimeSeries returns the installed store (nil when sampling is off).
func (s *Server) TimeSeries() *obs.TimeSeries { return s.series }

// SetJournal installs the daemon's event journal; the dashboard then
// renders its events (budget breaches, low-confidence findings).
func (s *Server) SetJournal(j *obs.Journal) { s.journal = j }

// SetOverhead atomically publishes a new overhead artifact for /overhead
// (the refresher calls it once per generation; pgo.OverheadSink).
func (s *Server) SetOverhead(data []byte) {
	if data == nil {
		return
	}
	s.ohData.Store(&data)
}

// Overhead returns the latest overhead artifact (nil before the first
// delivery).
func (s *Server) Overhead() []byte {
	if p := s.ohData.Load(); p != nil {
		return *p
	}
	return nil
}

// fleetContext returns the last trace context a fleet fetch propagated
// (zero before any traced fetch arrived).
func (s *Server) fleetContext() obs.SpanContext {
	s.ctxMu.Lock()
	defer s.ctxMu.Unlock()
	return s.fleetCtx
}

func (s *Server) setFleetContext(sc obs.SpanContext) {
	s.ctxMu.Lock()
	s.fleetCtx = sc
	s.ctxMu.Unlock()
}

// SetProfile renders and atomically publishes a new profile generation.
// The swap itself is a pointer store: in-flight requests keep the
// generation they started with.
func (s *Server) SetProfile(p *profdata.Profile, rep *obs.Report) error {
	start := time.Now()
	// The refresh span adopts the last fleet fetch's trace context: the
	// refresh causally belongs to the aggregation round consuming its
	// output, so the stitched fleet trace shows which round drove it.
	sp := s.span.SpanRemote("serve.refresh", s.fleetContext())
	defer sp.End()
	served := &Served{Name: s.name, SwappedAt: start}
	served.Profile = []byte(profdata.EncodeToString(p))
	served.Folded = EncodeFoldedText(Folded(p))
	if rep != nil {
		data, err := rep.Encode()
		if err != nil {
			return fmt.Errorf("introspect: encode report: %w", err)
		}
		served.Report = data
	}
	served.Generation = s.gen.Add(1)
	sp.SetAttr("generation", served.Generation)
	s.cur.Store(served)
	s.swapLatency.Observe(time.Since(start).Nanoseconds())
	if s.series != nil {
		// Sample once per swap on the generation clock — logical, never
		// wall time, so serialized series stay reproducible.
		s.series.PublishStats(s.reg)
		s.series.Sample(served.Generation, s.reg.Snapshot())
	}
	return nil
}

// Current returns the live generation (nil before the first SetProfile).
func (s *Server) Current() *Served { return s.cur.Load() }

// Generation returns the current swap count.
func (s *Server) Generation() uint64 { return s.gen.Load() }

// nextRefreshDelay returns the wait before the next refresh attempt after
// the given number of consecutive failures: the plain interval while
// healthy, doubling per failure up to 8x — a persistently broken collector
// must not be hammered at full cadence, but recovery is probed forever.
func nextRefreshDelay(interval time.Duration, failures int) time.Duration {
	if failures <= 0 {
		return interval
	}
	shift := failures
	if shift > 3 {
		shift = 3
	}
	return interval << shift
}

// RefreshLoop re-profiles on every interval until ctx is done, swapping in
// each fresh profile+report. A failed refresh counts on
// serve.refresh_failures and keeps the previous generation serving; while
// failures persist the loop backs off (capped exponential, up to 8x the
// interval) instead of retrying at full cadence, and the first success
// restores the normal rhythm.
func (s *Server) RefreshLoop(ctx context.Context, interval time.Duration, refresh RefreshFunc) {
	if interval <= 0 || refresh == nil {
		return
	}
	failures := 0
	t := time.NewTimer(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		prof, rep, err := refresh()
		if err == nil {
			err = s.SetProfile(prof, rep)
		}
		s.rounds.Add(1)
		if err != nil {
			failures++
			s.refreshFailures.Add(1)
			s.setLastRefresh("failed: " + err.Error())
		} else {
			failures = 0
			s.refreshes.Add(1)
			s.setLastRefresh("ok")
		}
		t.Reset(nextRefreshDelay(interval, failures))
	}
}

func (s *Server) setLastRefresh(outcome string) { s.lastRefresh.Store(&outcome) }

// lastRefreshOutcome returns the most recent refresh result ("none" before
// the first refresh attempt).
func (s *Server) lastRefreshOutcome() string {
	if p := s.lastRefresh.Load(); p != nil {
		return *p
	}
	return "none"
}

// Endpoints lists the daemon's HTTP surface (as concrete probe paths — the
// endpoint lint and the smoke tests iterate over these).
func (s *Server) Endpoints() []string {
	return []string{
		"/healthz",
		"/metrics",
		"/timeseries",
		"/dashboard",
		"/report",
		"/overhead",
		"/flamegraph",
		"/profiles/" + s.name,
	}
}

// Handler returns the daemon's HTTP handler. Every handler sets
// Content-Type before writing (the analysis endpoint lint enforces this).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Not a bare 200: generation, uptime-in-rounds, and the last refresh
		// outcome let the fleet aggregator (and the dashboard) distinguish
		// "alive" from "alive but stagnant".
		st := map[string]any{
			"status":        "ok",
			"generation":    s.Generation(),
			"uptime_rounds": s.rounds.Load(),
			"last_refresh":  s.lastRefreshOutcome(),
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(st)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(RenderPrometheus(s.reg.Snapshot()))
	})
	mux.HandleFunc("/timeseries", func(w http.ResponseWriter, r *http.Request) {
		data, err := s.series.EncodeJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	mux.HandleFunc("/dashboard", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(obs.RenderDashboard("csspgo serve: "+s.name, s.series, s.reg.Snapshot(), s.journal.Events()))
	})
	mux.HandleFunc("/overhead", func(w http.ResponseWriter, r *http.Request) {
		data := s.Overhead()
		if data == nil {
			http.Error(w, "no overhead ledger collected yet", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		cur := s.Current()
		if cur == nil || cur.Report == nil {
			http.Error(w, "no report collected yet", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(cur.Report)
	})
	mux.HandleFunc("/flamegraph", func(w http.ResponseWriter, r *http.Request) {
		s.serveFolded(w, r, s.name)
	})
	mux.HandleFunc("/flamegraph/", func(w http.ResponseWriter, r *http.Request) {
		s.serveFolded(w, r, strings.TrimPrefix(r.URL.Path, "/flamegraph/"))
	})
	mux.HandleFunc("/profiles/", func(w http.ResponseWriter, r *http.Request) {
		// Ingest the fleet aggregator's trace context: the handler span
		// adopts it (so it stitches under the aggregator's fleet.poll span),
		// and it is remembered so the next refresh attributes to this round.
		// Untraced requests (curl, the endpoint lint) mint no span — every
		// serve.handle_profile span therefore has a fleet ancestor, which is
		// what the stitch validator's -require-ancestor check pins.
		if remote, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
			sp := s.span.SpanRemote("serve.handle_profile", remote, obs.A("path", r.URL.Path))
			defer sp.End()
			s.setFleetContext(remote)
		}
		name := strings.TrimPrefix(r.URL.Path, "/profiles/")
		cur := s.Current()
		if cur == nil || (name != cur.Name && name != cur.Name+".prof") {
			http.Error(w, "unknown profile "+name, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Profile-Generation", fmt.Sprint(cur.Generation))
		w.Write(cur.Profile)
	})
	// Count every request, whatever the endpoint.
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

func (s *Server) serveFolded(w http.ResponseWriter, r *http.Request, name string) {
	if q := r.URL.Query().Get("profile"); q != "" {
		name = q
	}
	cur := s.Current()
	if cur == nil || name != cur.Name {
		http.Error(w, "unknown profile "+name, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(cur.Folded)
}

// maxRequestBody caps request bodies: the daemon's whole surface is GET,
// so anything beyond a trivial body is a malformed or hostile client.
const maxRequestBody = 1 << 20

// capRequestBody rejects requests declaring an oversized body outright and
// caps undeclared (chunked) bodies at the same limit.
func capRequestBody(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.ContentLength > maxRequestBody {
			http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
		h.ServeHTTP(w, r)
	})
}

// httpServer builds the hardened http.Server the daemon runs: every I/O
// phase is bounded, so a slow-loris client (or a stalled network) cannot
// pin connections open indefinitely, and request bodies are capped.
func (s *Server) httpServer() *http.Server {
	return &http.Server{
		Handler:           capRequestBody(s.Handler()),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// Serve runs an HTTP server on l until ctx is done, then shuts down
// gracefully (in-flight requests get up to five seconds to finish).
// A closed listener after shutdown is a clean exit, not an error.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	hs := s.httpServer()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case <-ctx.Done():
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Shutdown(shctx)
	case err := <-errc:
		if err == http.ErrServerClosed {
			return nil
		}
		return err
	}
}
