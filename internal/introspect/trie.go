package introspect

import (
	"fmt"
	"sort"
	"strings"

	"csspgo/internal/profdata"
)

// TrieNode is one node of the context trie: the function executing at this
// depth, the call site in the parent frame that reaches it, and its sample
// weights. Exclusive is the weight of profiles whose context ends exactly
// here; Inclusive adds every descendant's weight (so a node's Inclusive is
// what a flamegraph renders as its width).
type TrieNode struct {
	Func string
	// Site is the call site in the parent frame leading here (zero for
	// depth-1 nodes, which are context roots).
	Site      profdata.LocKey
	Exclusive uint64
	Inclusive uint64
	Children  []*TrieNode

	children map[trieKey]*TrieNode // insertion index; nil after freeze
}

type trieKey struct {
	site profdata.LocKey
	fn   string
}

// BuildTrie assembles the context trie of a profile: every context profile
// contributes its body samples at its path, and base function profiles
// (flat residue) contribute depth-1 nodes. The returned root is synthetic
// (Func ""); its Inclusive is the profile's total weight. Children are
// sorted by (Func, Site), so walks and renderings are deterministic.
func BuildTrie(p *profdata.Profile) *TrieNode {
	root := &TrieNode{children: map[trieKey]*TrieNode{}}
	insert := func(frames profdata.Context, w uint64) {
		if len(frames) == 0 {
			return
		}
		node := root
		for i, f := range frames {
			key := trieKey{fn: f.Func}
			if i > 0 {
				key.site = frames[i-1].Site
			}
			child := node.children[key]
			if child == nil {
				child = &TrieNode{Func: f.Func, Site: key.site, children: map[trieKey]*TrieNode{}}
				node.children[key] = child
			}
			node = child
		}
		node.Exclusive += w
	}
	for _, name := range p.SortedFuncNames() {
		insert(profdata.Context{{Func: name}}, p.Funcs[name].TotalSamples)
	}
	for _, key := range p.SortedContextKeys() {
		fp := p.Contexts[key]
		insert(fp.Context, fp.TotalSamples)
	}
	root.freeze()
	return root
}

// freeze computes inclusive weights and sorts children recursively.
func (n *TrieNode) freeze() {
	n.Children = make([]*TrieNode, 0, len(n.children))
	for _, c := range n.children {
		n.Children = append(n.Children, c)
	}
	n.children = nil
	sort.Slice(n.Children, func(i, j int) bool {
		a, b := n.Children[i], n.Children[j]
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.Site.ID != b.Site.ID {
			return a.Site.ID < b.Site.ID
		}
		return a.Site.Disc < b.Site.Disc
	})
	n.Inclusive = n.Exclusive
	for _, c := range n.Children {
		c.freeze()
		n.Inclusive += c.Inclusive
	}
}

// Walk visits every node except the synthetic root in preorder,
// deterministic child order, with its depth (1 = context root).
func (n *TrieNode) Walk(fn func(node *TrieNode, depth int)) {
	var rec func(node *TrieNode, depth int)
	rec = func(node *TrieNode, depth int) {
		if depth > 0 {
			fn(node, depth)
		}
		for _, c := range node.Children {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
}

// Format renders the trie as an indented tree with inclusive/exclusive
// weights and each node's share of the total.
func (n *TrieNode) Format() string {
	var sb strings.Builder
	total := n.Inclusive
	fmt.Fprintf(&sb, "context trie: %d total samples\n", total)
	n.Walk(func(node *TrieNode, depth int) {
		label := node.Func
		if depth > 1 {
			label = fmt.Sprintf("%s (from site %s)", node.Func, node.Site)
		}
		share := 0.0
		if total > 0 {
			share = 100 * float64(node.Inclusive) / float64(total)
		}
		fmt.Fprintf(&sb, "%s%-*s incl=%-10d excl=%-10d %5.1f%%\n",
			strings.Repeat("  ", depth-1), 44-2*(depth-1), label,
			node.Inclusive, node.Exclusive, share)
	})
	return sb.String()
}
