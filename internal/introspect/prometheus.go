package introspect

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"csspgo/internal/obs"
)

// RenderPrometheus renders a metric snapshot in the Prometheus text
// exposition format (version 0.0.4): dotted metric names become underscore
// paths, counters and gauges map directly, and histograms export as
// summaries with p50/p95/p99 quantile samples plus _sum and _count.
// Output is sorted by metric name, so identical snapshots render
// byte-identically.
func RenderPrometheus(snap obs.Snapshot) []byte {
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		mv := snap[name]
		pn := promName(name)
		switch mv.Kind {
		case obs.KindCounter:
			fmt.Fprintf(&sb, "# TYPE %s counter\n%s %d\n", pn, pn, mv.Value)
		case obs.KindGauge:
			fmt.Fprintf(&sb, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(mv.Gauge))
		case obs.KindHistogram:
			fmt.Fprintf(&sb, "# TYPE %s summary\n", pn)
			fmt.Fprintf(&sb, "%s{quantile=\"0.5\"} %d\n", pn, mv.P50)
			fmt.Fprintf(&sb, "%s{quantile=\"0.95\"} %d\n", pn, mv.P95)
			fmt.Fprintf(&sb, "%s{quantile=\"0.99\"} %d\n", pn, mv.P99)
			fmt.Fprintf(&sb, "%s_sum %d\n", pn, mv.Sum)
			fmt.Fprintf(&sb, "%s_count %d\n", pn, mv.Count)
		}
	}
	return []byte(sb.String())
}

// promName maps a dotted metric name onto the Prometheus name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var sb strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_':
			sb.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promFloat renders a float like Prometheus clients do (shortest
// round-trippable form).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
