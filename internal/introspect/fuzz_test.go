package introspect

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzFoldedText checks that any input the text parser accepts
// re-encodes canonically: parse -> encode -> parse is a fixpoint.
func FuzzFoldedText(f *testing.F) {
	f.Add([]byte("main 160\nmain:3;foo 100\nmain:3;foo:2;bar 40\n"))
	f.Add([]byte("# comment\n\na 1\na 2\n"))
	f.Add([]byte("x:1.2;y 18446744073709551615\n"))
	f.Add([]byte("a:-3;b 7\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := ParseFoldedText(data)
		if err != nil {
			return
		}
		enc := EncodeFoldedText(entries)
		back, err := ParseFoldedText(enc)
		if err != nil {
			t.Fatalf("canonical text rejected: %v\n%q", err, enc)
		}
		if !reflect.DeepEqual(entries, back) {
			t.Fatalf("not a fixpoint:\n in  %+v\n out %+v", entries, back)
		}
		if again := EncodeFoldedText(back); !bytes.Equal(enc, again) {
			t.Fatalf("re-encode differs:\n%q\n%q", enc, again)
		}
	})
}

// FuzzFoldedBinary checks the binary decoder never panics and that any
// accepted input decodes to entries whose re-encoding decodes equally.
func FuzzFoldedBinary(f *testing.F) {
	f.Add(EncodeFoldedBinary(Folded(testProfile())))
	f.Add([]byte("CSFL\x01\x00"))
	f.Add([]byte("CSFL"))
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeFoldedBinary(data)
		if err != nil {
			return
		}
		enc := EncodeFoldedBinary(entries)
		back, err := DecodeFoldedBinary(enc)
		if err != nil {
			t.Fatalf("canonical binary rejected: %v", err)
		}
		if !reflect.DeepEqual(entries, back) {
			t.Fatalf("binary not a fixpoint:\n in  %+v\n out %+v", entries, back)
		}
	})
}
