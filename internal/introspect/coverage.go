package introspect

import (
	"fmt"
	"sort"
	"strings"

	"csspgo/internal/ir"
	"csspgo/internal/machine"
	"csspgo/internal/profdata"
)

// FuncCoverage is one function's profile coverage: how many of its block
// probes (from the binary's probe metadata) carry a nonzero count in the
// profile. Low coverage means sampling never reached most of the function —
// the profile says little about it.
type FuncCoverage struct {
	Func    string
	Covered int
	Total   int
}

// Ratio returns Covered/Total (0 for probe-less functions).
func (c FuncCoverage) Ratio() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Covered) / float64(c.Total)
}

// Coverage computes per-function profile coverage for a probe-based
// profile against the binary it was collected on. Context profiles are
// flattened first (a block counts as covered if any context exercised it).
// Results are sorted by function name.
func Coverage(bin *machine.Prog, p *profdata.Profile) ([]FuncCoverage, error) {
	if p.Kind != profdata.ProbeBased {
		return nil, fmt.Errorf("introspect: coverage needs a probe-based profile, got kind %s", p.Kind)
	}
	// Distinct block-probe IDs per defining function, inlined copies
	// deduplicated: the probe's identity is (Func, ID) however many times
	// inlining materialized it.
	probes := map[string]map[int32]bool{}
	for i := range bin.Probes {
		rec := &bin.Probes[i]
		if rec.Kind != ir.ProbeBlock {
			continue
		}
		ids := probes[rec.Func]
		if ids == nil {
			ids = map[int32]bool{}
			probes[rec.Func] = ids
		}
		ids[rec.ID] = true
	}
	flat := p
	if p.CS {
		flat = p.Clone()
		flat.Flatten()
	}
	out := make([]FuncCoverage, 0, len(probes))
	for fn, ids := range probes {
		cov := FuncCoverage{Func: fn, Total: len(ids)}
		if fp := flat.Funcs[fn]; fp != nil {
			for id := range ids {
				if fp.Blocks[profdata.LocKey{ID: id}] > 0 {
					cov.Covered++
				}
			}
		}
		out = append(out, cov)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Func < out[j].Func })
	return out, nil
}

// FormatCoverage renders a coverage table with a weighted total line.
func FormatCoverage(covs []FuncCoverage) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %8s %8s %8s\n", "function", "covered", "probes", "ratio")
	var covered, total int
	for _, c := range covs {
		fmt.Fprintf(&sb, "%-28s %8d %8d %7.1f%%\n", c.Func, c.Covered, c.Total, 100*c.Ratio())
		covered += c.Covered
		total += c.Total
	}
	if total > 0 {
		fmt.Fprintf(&sb, "%-28s %8d %8d %7.1f%%\n", "TOTAL", covered, total,
			100*float64(covered)/float64(total))
	}
	return sb.String()
}
