package introspect

import (
	"strings"
	"testing"

	"csspgo/internal/ir"
	"csspgo/internal/machine"
	"csspgo/internal/profdata"
)

func TestBuildTrieWeights(t *testing.T) {
	root := BuildTrie(testProfile())
	if root.Inclusive != 300 {
		t.Fatalf("root inclusive = %d, want 300", root.Inclusive)
	}
	if len(root.Children) != 1 || root.Children[0].Func != "main" {
		t.Fatalf("root children = %+v", root.Children)
	}
	main := root.Children[0]
	if main.Exclusive != 160 || main.Inclusive != 300 {
		t.Fatalf("main incl/excl = %d/%d", main.Inclusive, main.Exclusive)
	}
	if len(main.Children) != 1 {
		t.Fatalf("main children = %+v", main.Children)
	}
	foo := main.Children[0]
	if foo.Func != "foo" || foo.Site != (profdata.LocKey{ID: 3}) {
		t.Fatalf("foo node = %+v", foo)
	}
	if foo.Exclusive != 100 || foo.Inclusive != 140 {
		t.Fatalf("foo incl/excl = %d/%d", foo.Inclusive, foo.Exclusive)
	}
	bar := foo.Children[0]
	if bar.Func != "bar" || bar.Site != (profdata.LocKey{ID: 2}) ||
		bar.Exclusive != 40 || bar.Inclusive != 40 {
		t.Fatalf("bar node = %+v", bar)
	}
}

func TestTrieWalkOrderAndDepth(t *testing.T) {
	root := BuildTrie(testProfile())
	var got []string
	root.Walk(func(n *TrieNode, depth int) {
		got = append(got, strings.Repeat(">", depth)+n.Func)
	})
	want := []string{">main", ">>foo", ">>>bar"}
	if len(got) != len(want) {
		t.Fatalf("walk = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walk = %v, want %v", got, want)
		}
	}
}

func TestTrieFormat(t *testing.T) {
	out := BuildTrie(testProfile()).Format()
	for _, want := range []string{"300 total samples", "main", "foo (from site 3)", "bar (from site 2)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func TestCoverage(t *testing.T) {
	bin := &machine.Prog{
		Probes: []machine.ProbeRec{
			{Func: "main", ID: 1, Kind: ir.ProbeBlock},
			{Func: "main", ID: 2, Kind: ir.ProbeBlock},
			{Func: "main", ID: 4, Kind: ir.ProbeBlock},
			{Func: "main", ID: 3, Kind: ir.ProbeCall}, // call probes don't count
			{Func: "foo", ID: 1, Kind: ir.ProbeBlock},
			{Func: "foo", ID: 1, Kind: ir.ProbeBlock}, // inlined duplicate
			{Func: "foo", ID: 2, Kind: ir.ProbeBlock},
			{Func: "cold", ID: 1, Kind: ir.ProbeBlock},
		},
	}
	covs, err := Coverage(bin, testProfile())
	if err != nil {
		t.Fatalf("Coverage: %v", err)
	}
	want := []FuncCoverage{
		{Func: "cold", Covered: 0, Total: 1},
		{Func: "foo", Covered: 2, Total: 2},
		{Func: "main", Covered: 2, Total: 3},
	}
	if len(covs) != len(want) {
		t.Fatalf("coverage = %+v", covs)
	}
	for i := range want {
		if covs[i] != want[i] {
			t.Fatalf("coverage[%d] = %+v, want %+v", i, covs[i], want[i])
		}
	}
	table := FormatCoverage(covs)
	if !strings.Contains(table, "TOTAL") || !strings.Contains(table, "cold") {
		t.Fatalf("table:\n%s", table)
	}
}

func TestCoverageRejectsLineBased(t *testing.T) {
	p := profdata.New(profdata.LineBased, false)
	if _, err := Coverage(&machine.Prog{}, p); err == nil {
		t.Fatal("line-based profile should be rejected")
	}
}
