package introspect

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"csspgo/internal/obs"
	"csspgo/internal/profdata"
)

func get(t *testing.T, h http.Handler, path string) (*http.Response, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return res, body
}

func TestServerEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewServer("quickstart", reg)
	rep := obs.NewReport("test")
	if err := s.SetProfile(testProfile(), rep); err != nil {
		t.Fatalf("SetProfile: %v", err)
	}
	h := s.Handler()

	res, body := get(t, h, "/healthz")
	if res.StatusCode != 200 || !strings.Contains(string(body), `"status":"ok"`) {
		t.Fatalf("/healthz: %d %q", res.StatusCode, body)
	}
	if !strings.Contains(string(body), `"generation":1`) ||
		!strings.Contains(string(body), `"last_refresh":"none"`) {
		t.Fatalf("/healthz must report generation and last refresh: %q", body)
	}

	res, body = get(t, h, "/metrics")
	if res.StatusCode != 200 {
		t.Fatalf("/metrics: %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "0.0.4") {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	for _, want := range []string{"serve_requests", "serve_swap_latency_ns{quantile=\"0.99\"}"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	res, body = get(t, h, "/flamegraph")
	if res.StatusCode != 200 || !bytes.Equal(body, EncodeFoldedText(Folded(testProfile()))) {
		t.Fatalf("/flamegraph: %d %q", res.StatusCode, body)
	}

	res, body = get(t, h, "/profiles/quickstart")
	if res.StatusCode != 200 {
		t.Fatalf("/profiles: %d", res.StatusCode)
	}
	if res.Header.Get("X-Profile-Generation") != "1" {
		t.Fatalf("generation header = %q", res.Header.Get("X-Profile-Generation"))
	}
	back, err := profdata.DecodeAny(body)
	if err != nil {
		t.Fatalf("served profile does not decode: %v", err)
	}
	if back.TotalSamples() != testProfile().TotalSamples() {
		t.Fatalf("served profile samples = %d", back.TotalSamples())
	}
	if res, _ = get(t, h, "/profiles/quickstart.prof"); res.StatusCode != 200 {
		t.Fatalf("/profiles/quickstart.prof: %d", res.StatusCode)
	}
	if res, _ = get(t, h, "/profiles/other"); res.StatusCode != 404 {
		t.Fatalf("/profiles/other: %d", res.StatusCode)
	}

	res, body = get(t, h, "/report")
	if res.StatusCode != 200 {
		t.Fatalf("/report: %d", res.StatusCode)
	}
	if _, err := obs.DecodeReport(body); err != nil {
		t.Fatalf("/report does not decode: %v", err)
	}

	if reg.Counter(obs.MServeRequests).Value() == 0 {
		t.Fatal("serve.requests not incremented")
	}
}

func TestServerBeforeFirstProfile(t *testing.T) {
	s := NewServer("p", obs.NewRegistry())
	h := s.Handler()
	for _, path := range []string{"/report", "/flamegraph", "/profiles/p"} {
		if res, _ := get(t, h, path); res.StatusCode != 404 {
			t.Fatalf("%s before SetProfile: %d", path, res.StatusCode)
		}
	}
	if res, _ := get(t, h, "/healthz"); res.StatusCode != 200 {
		t.Fatal("/healthz must work before first profile")
	}
}

func TestRefreshLoopSwaps(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewServer("p", reg)
	if err := s.SetProfile(testProfile(), nil); err != nil {
		t.Fatalf("SetProfile: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.RefreshLoop(ctx, time.Millisecond, func() (*profdata.Profile, *obs.Report, error) {
			return testProfile(), nil, nil
		})
	}()
	deadline := time.After(5 * time.Second)
	for s.Generation() < 3 {
		select {
		case <-deadline:
			t.Fatal("refresh loop never swapped")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	<-done
	if reg.Counter(obs.MServeRefreshes).Value() < 2 {
		t.Fatalf("serve.refreshes = %d", reg.Counter(obs.MServeRefreshes).Value())
	}
	cur := s.Current()
	if cur == nil || cur.Generation < 3 {
		t.Fatalf("current = %+v", cur)
	}
}

// The backoff schedule: full cadence while healthy, doubling per
// consecutive failure, capped at 8x, reset by success.
func TestNextRefreshDelay(t *testing.T) {
	const iv = time.Second
	cases := []struct {
		failures int
		want     time.Duration
	}{
		{0, iv}, {1, 2 * iv}, {2, 4 * iv}, {3, 8 * iv}, {4, 8 * iv}, {100, 8 * iv}, {-1, iv},
	}
	for _, c := range cases {
		if got := nextRefreshDelay(iv, c.failures); got != c.want {
			t.Fatalf("nextRefreshDelay(%v, %d) = %v, want %v", iv, c.failures, got, c.want)
		}
	}
}

// A failing refresher keeps the last-good generation serving and recovers
// to normal cadence once it heals.
func TestRefreshLoopBacksOffAndRecovers(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewServer("p", reg)
	if err := s.SetProfile(testProfile(), nil); err != nil {
		t.Fatalf("SetProfile: %v", err)
	}
	gen1 := s.Current()

	var calls atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.RefreshLoop(ctx, time.Millisecond, func() (*profdata.Profile, *obs.Report, error) {
			if calls.Add(1) <= 3 {
				return nil, nil, io.ErrUnexpectedEOF
			}
			return testProfile(), nil, nil
		})
	}()
	deadline := time.After(5 * time.Second)
	for reg.Counter(obs.MServeRefreshes).Value() < 2 {
		select {
		case <-deadline:
			t.Fatal("loop never recovered from failures")
		case <-time.After(time.Millisecond):
		}
		// Throughout the failure streak the original generation serves.
		if f := reg.Counter(obs.MServeRefreshFailures).Value(); f > 0 && f < 3 && s.Current() != gen1 {
			t.Fatal("failed refresh replaced the served generation")
		}
	}
	cancel()
	<-done
	if got := reg.Counter(obs.MServeRefreshFailures).Value(); got != 3 {
		t.Fatalf("serve.refresh_failures = %d, want 3 (one per attempt)", got)
	}
	if s.Generation() < 3 {
		t.Fatalf("generation = %d after recovery", s.Generation())
	}
}

// The daemon's http.Server bounds every connection phase and caps request
// bodies — a slow or hostile client cannot pin it open.
func TestHTTPServerHardened(t *testing.T) {
	s := NewServer("p", obs.NewRegistry())
	hs := s.httpServer()
	if hs.ReadHeaderTimeout <= 0 || hs.ReadTimeout <= 0 || hs.WriteTimeout <= 0 || hs.IdleTimeout <= 0 {
		t.Fatalf("unbounded server phase: %+v", hs)
	}
	if err := s.SetProfile(testProfile(), nil); err != nil {
		t.Fatalf("SetProfile: %v", err)
	}
	// The body cap rejects oversized uploads instead of reading them.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/healthz", bytes.NewReader(make([]byte, maxRequestBody+1)))
	hs.Handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d, want %d", rec.Code, http.StatusRequestEntityTooLarge)
	}
	// Normal requests pass through the cap untouched.
	rec = httptest.NewRecorder()
	hs.Handler.ServeHTTP(rec, httptest.NewRequest("GET", "/profiles/p", nil))
	if rec.Code != 200 {
		t.Fatalf("GET through hardened handler: %d", rec.Code)
	}
}

func TestRefreshLoopCountsFailures(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewServer("p", reg)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.RefreshLoop(ctx, time.Millisecond, func() (*profdata.Profile, *obs.Report, error) {
			return nil, nil, io.ErrUnexpectedEOF
		})
	}()
	deadline := time.After(5 * time.Second)
	for reg.Counter(obs.MServeRefreshFailures).Value() < 2 {
		select {
		case <-deadline:
			t.Fatal("failures never counted")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	<-done
	if s.Generation() != 0 {
		t.Fatal("failed refresh must not swap")
	}
}

// /overhead 404s before the first artifact lands and serves the exact bytes
// the refresher published afterwards (the server treats the artifact as
// opaque — no re-encoding, so fleet-side byte comparisons hold).
func TestServerOverheadEndpoint(t *testing.T) {
	s := NewServer("p", obs.NewRegistry())
	if err := s.SetProfile(testProfile(), nil); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	res, _ := get(t, h, "/overhead")
	if res.StatusCode != 404 {
		t.Fatalf("/overhead before first artifact -> %d", res.StatusCode)
	}

	artifact := []byte(`{"schema":"csspgo-overhead/v1"}` + "\n")
	s.SetOverhead(artifact)
	res, body := get(t, h, "/overhead")
	if res.StatusCode != 200 {
		t.Fatalf("/overhead -> %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("content-type = %q", ct)
	}
	if !bytes.Equal(body, artifact) {
		t.Fatalf("served bytes differ: %q", body)
	}
	// nil delivery is ignored, not a wipe.
	s.SetOverhead(nil)
	if res, _ := get(t, h, "/overhead"); res.StatusCode != 200 {
		t.Fatalf("nil SetOverhead wiped the artifact: %d", res.StatusCode)
	}
}
