// Package introspect makes profiles inspectable: folded-stack (flamegraph-
// collapsed) export in deterministic text and binary encodings, a
// context-trie walker with inclusive/exclusive weights, per-function probe
// coverage, Prometheus rendering of metric snapshots, and the HTTP serving
// daemon behind `csspgo serve`.
package introspect

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"csspgo/internal/profdata"
)

// Entry is one folded stack: the calling-context frames (outermost first,
// leaf last) and the total sample weight attributed to exactly that stack.
type Entry struct {
	Frames profdata.Context
	Weight uint64
}

// Key renders the folded-stack key: frames joined with ';', every frame
// except the leaf carrying its call site ("main:2;foo:5;bar"). Unlike
// flamegraph convention, call sites are kept so distinct calling contexts
// through the same functions stay distinct and the encoding round-trips
// losslessly.
func (e Entry) Key() string {
	var sb strings.Builder
	for i, f := range e.Frames {
		if i > 0 {
			sb.WriteByte(';')
		}
		sb.WriteString(f.Func)
		if i != len(e.Frames)-1 {
			sb.WriteByte(':')
			sb.WriteString(f.Site.String())
		}
	}
	return sb.String()
}

// Folded flattens a profile into folded-stack entries: one entry per
// calling context (weight = the context's body samples) plus one
// single-frame entry per base function profile (flat residue). Entries with
// identical stacks merge; the result is sorted by stack key, so the export
// is deterministic for any map iteration order.
func Folded(p *profdata.Profile) []Entry {
	byKey := map[string]*Entry{}
	add := func(frames profdata.Context, w uint64) {
		if w == 0 || len(frames) == 0 {
			return
		}
		e := Entry{Frames: append(profdata.Context(nil), frames...), Weight: w}
		// The leaf frame's site is meaningless; clear it so merged keys and
		// re-parsed entries compare equal.
		e.Frames[len(e.Frames)-1].Site = profdata.LocKey{}
		key := e.Key()
		if cur, ok := byKey[key]; ok {
			cur.Weight += w
			return
		}
		byKey[key] = &e
	}
	for _, name := range p.SortedFuncNames() {
		fp := p.Funcs[name]
		add(profdata.Context{{Func: name}}, fp.TotalSamples)
	}
	for _, key := range p.SortedContextKeys() {
		fp := p.Contexts[key]
		add(fp.Context, fp.TotalSamples)
	}
	return sortEntries(byKey)
}

func sortEntries(byKey map[string]*Entry) []Entry {
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Entry, len(keys))
	for i, k := range keys {
		out[i] = *byKey[k]
	}
	return out
}

// Top returns the n heaviest entries, weight-descending (ties broken by
// stack key, so the order is total).
func Top(entries []Entry, n int) []Entry {
	out := append([]Entry(nil), entries...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Key() < out[j].Key()
	})
	if n >= 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// EncodeFoldedText renders entries in the folded text format, one
// "stack weight" line each. Entries are re-canonicalized (merged + sorted)
// first, so the output is deterministic regardless of input order.
func EncodeFoldedText(entries []Entry) []byte {
	var sb strings.Builder
	for _, e := range canonicalize(entries) {
		sb.WriteString(e.Key())
		sb.WriteByte(' ')
		sb.WriteString(strconv.FormatUint(e.Weight, 10))
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}

// canonicalize merges duplicate stacks and sorts by key.
func canonicalize(entries []Entry) []Entry {
	byKey := map[string]*Entry{}
	for _, e := range entries {
		key := e.Key()
		if cur, ok := byKey[key]; ok {
			cur.Weight += e.Weight
			continue
		}
		c := e
		c.Frames = append(profdata.Context(nil), e.Frames...)
		byKey[key] = &c
	}
	return sortEntries(byKey)
}

// ParseFoldedText parses the folded text format back into canonical
// (merged, sorted) entries. Duplicate stacks accumulate; malformed lines
// are errors, blank lines and '#' comments are skipped.
func ParseFoldedText(data []byte) ([]Entry, error) {
	byKey := map[string]*Entry{}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("folded: line %d: missing weight", ln+1)
		}
		weight, err := strconv.ParseUint(line[sp+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("folded: line %d: bad weight %q", ln+1, line[sp+1:])
		}
		frames, err := parseStack(line[:sp])
		if err != nil {
			return nil, fmt.Errorf("folded: line %d: %w", ln+1, err)
		}
		if weight == 0 {
			continue
		}
		e := Entry{Frames: frames, Weight: weight}
		key := e.Key()
		if cur, ok := byKey[key]; ok {
			cur.Weight += weight
			continue
		}
		byKey[key] = &e
	}
	return sortEntries(byKey), nil
}

// parseStack parses "main:2;foo:5.1;bar" into context frames.
func parseStack(s string) (profdata.Context, error) {
	if s == "" {
		return nil, fmt.Errorf("empty stack")
	}
	parts := strings.Split(s, ";")
	frames := make(profdata.Context, 0, len(parts))
	for i, part := range parts {
		if i == len(parts)-1 {
			if !validFuncName(part) {
				return nil, fmt.Errorf("bad leaf frame %q", part)
			}
			frames = append(frames, profdata.ContextFrame{Func: part})
			continue
		}
		colon := strings.LastIndexByte(part, ':')
		if colon < 0 {
			return nil, fmt.Errorf("frame %q missing call site", part)
		}
		fn := part[:colon]
		if !validFuncName(fn) {
			return nil, fmt.Errorf("bad frame function %q", fn)
		}
		site, err := parseSite(part[colon+1:])
		if err != nil {
			return nil, fmt.Errorf("frame %q: %w", part, err)
		}
		frames = append(frames, profdata.ContextFrame{Func: fn, Site: site})
	}
	return frames, nil
}

// validFuncName rejects names that would collide with the folded syntax.
// MiniLang identifiers (and the synthetic names probes generate) never
// contain these bytes, so the encoding is total over real profiles.
func validFuncName(s string) bool {
	return s != "" && !strings.ContainsAny(s, ";: \t@\r\n")
}

// parseSite parses "2" or "2.1" as a LocKey, requiring the canonical
// rendering (no leading zeros, plus signs, or empty discriminators) so that
// parse -> encode is the identity on accepted inputs.
func parseSite(s string) (profdata.LocKey, error) {
	idStr, discStr, hasDisc := strings.Cut(s, ".")
	id, err := parseCanonicalInt32(idStr)
	if err != nil {
		return profdata.LocKey{}, err
	}
	loc := profdata.LocKey{ID: id}
	if hasDisc {
		disc, err := parseCanonicalInt32(discStr)
		if err != nil {
			return profdata.LocKey{}, err
		}
		if disc == 0 {
			return profdata.LocKey{}, fmt.Errorf("non-canonical zero discriminator in %q", s)
		}
		loc.Disc = disc
	}
	return loc, nil
}

func parseCanonicalInt32(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad site %q", s)
	}
	if s != strconv.FormatInt(v, 10) {
		return 0, fmt.Errorf("non-canonical site %q", s)
	}
	return int32(v), nil
}

// The binary folded encoding: "CSFL" magic, a format version byte, then a
// uvarint entry count followed by entries in canonical (sorted) order.
// Each entry is: uvarint frame count; per frame a uvarint name length +
// name bytes, plus (non-leaf frames only) zigzag-varint site ID and
// discriminator; then the uvarint weight.
var foldedMagic = []byte("CSFL\x01")

// Decoder hardening bounds — far above anything a real profile produces,
// low enough that fuzzing cannot allocate unbounded memory.
const (
	maxFoldedEntries = 1 << 22
	maxFoldedFrames  = 1 << 12
	maxFoldedNameLen = 1 << 12
)

// EncodeFoldedBinary renders entries in the compact binary folded format
// (canonicalized first, like the text encoder).
func EncodeFoldedBinary(entries []Entry) []byte {
	canon := canonicalize(entries)
	var buf bytes.Buffer
	buf.Write(foldedMagic)
	writeUvarint(&buf, uint64(len(canon)))
	for _, e := range canon {
		writeUvarint(&buf, uint64(len(e.Frames)))
		for i, f := range e.Frames {
			writeUvarint(&buf, uint64(len(f.Func)))
			buf.WriteString(f.Func)
			if i != len(e.Frames)-1 {
				writeVarint(&buf, int64(f.Site.ID))
				writeVarint(&buf, int64(f.Site.Disc))
			}
		}
		writeUvarint(&buf, e.Weight)
	}
	return buf.Bytes()
}

// DecodeFoldedBinary parses the binary folded format, validating frame
// names and bounds; the result is re-canonicalized so decode(encode(x))
// equals canonicalize(x).
func DecodeFoldedBinary(data []byte) ([]Entry, error) {
	if !bytes.HasPrefix(data, foldedMagic) {
		return nil, fmt.Errorf("folded: bad magic")
	}
	r := bytes.NewReader(data[len(foldedMagic):])
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("folded: entry count: %w", err)
	}
	if n > maxFoldedEntries {
		return nil, fmt.Errorf("folded: implausible entry count %d", n)
	}
	entries := make([]Entry, 0, min(int(n), 1024))
	for ei := uint64(0); ei < n; ei++ {
		nf, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("folded: entry %d: frame count: %w", ei, err)
		}
		if nf == 0 || nf > maxFoldedFrames {
			return nil, fmt.Errorf("folded: entry %d: bad frame count %d", ei, nf)
		}
		frames := make(profdata.Context, 0, nf)
		for fi := uint64(0); fi < nf; fi++ {
			nameLen, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, fmt.Errorf("folded: entry %d: name length: %w", ei, err)
			}
			if nameLen == 0 || nameLen > maxFoldedNameLen {
				return nil, fmt.Errorf("folded: entry %d: bad name length %d", ei, nameLen)
			}
			name := make([]byte, nameLen)
			if _, err := r.Read(name); err != nil || uint64(len(name)) != nameLen {
				return nil, fmt.Errorf("folded: entry %d: truncated name", ei)
			}
			if !validFuncName(string(name)) {
				return nil, fmt.Errorf("folded: entry %d: invalid function name %q", ei, name)
			}
			frame := profdata.ContextFrame{Func: string(name)}
			if fi != nf-1 {
				id, err := binary.ReadVarint(r)
				if err != nil {
					return nil, fmt.Errorf("folded: entry %d: site: %w", ei, err)
				}
				disc, err := binary.ReadVarint(r)
				if err != nil {
					return nil, fmt.Errorf("folded: entry %d: discriminator: %w", ei, err)
				}
				if id != int64(int32(id)) || disc != int64(int32(disc)) {
					return nil, fmt.Errorf("folded: entry %d: site out of int32 range", ei)
				}
				frame.Site = profdata.LocKey{ID: int32(id), Disc: int32(disc)}
			}
			frames = append(frames, frame)
		}
		weight, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("folded: entry %d: weight: %w", ei, err)
		}
		if weight == 0 {
			continue
		}
		entries = append(entries, Entry{Frames: frames, Weight: weight})
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("folded: %d trailing bytes", r.Len())
	}
	return canonicalize(entries), nil
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

func writeVarint(buf *bytes.Buffer, v int64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutVarint(tmp[:], v)])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
