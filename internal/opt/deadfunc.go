package opt

import "csspgo/internal/ir"

// DropDeadFunctions removes functions unreachable from main in the static
// call graph — after aggressive inlining, fully inlined callees have no
// remaining callers and their standalone bodies disappear from the binary
// (the code-size payoff the pre-inliner's binary-extracted sizes predict).
// Returns the number of functions dropped.
// deadFuncPass drops whole functions; surviving bodies are untouched.
var deadFuncPass = registerPass("drop-dead-functions", flowPreserves, semStructural)

func DropDeadFunctions(p *ir.Program) int {
	reach := map[string]bool{"main": true}
	work := []string{"main"}
	for len(work) > 0 {
		name := work[len(work)-1]
		work = work[:len(work)-1]
		f := p.Funcs[name]
		if f == nil {
			continue
		}
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				op := b.Instrs[i].Op
				// Function references keep their targets alive: an icall
				// may reach anything whose address was taken.
				if (op == ir.OpCall || op == ir.OpFuncRef) && !reach[b.Instrs[i].Callee] {
					reach[b.Instrs[i].Callee] = true
					work = append(work, b.Instrs[i].Callee)
				}
			}
		}
	}
	var keep []string
	dropped := 0
	for _, name := range p.Order {
		if reach[name] {
			keep = append(keep, name)
			continue
		}
		if f := p.Funcs[name]; f != nil && f.NumProbes > 0 {
			if p.DroppedChecksums == nil {
				p.DroppedChecksums = map[string]uint64{}
			}
			p.DroppedChecksums[name] = f.Checksum
		}
		delete(p.Funcs, name)
		dropped++
	}
	p.Order = keep
	return dropped
}
