package opt

import (
	"csspgo/internal/inference"
	"csspgo/internal/ir"
	"csspgo/internal/profdata"
)

// Optimize runs the full pipeline over the program, mirroring the paper's
// Fig. 1 flow: profile annotation + inference, profile-guided top-down
// inlining (sample loader / early inliner), the scalar and control-flow
// pipeline (SimplifyCFG, DCE, LICM, unroll, if-convert, tail merge), the
// main bottom-up inliner, tail-call elimination, then the profile-consuming
// backend passes (layout, splitting) after a final inference pass restores
// flow consistency.
func Optimize(p *ir.Program, cfg *Config) (*Stats, error) {
	st := &Stats{}
	// Record ThinLTO summary sizes on pristine bodies (importability is
	// decided on summaries, not on transformed IR).
	for _, f := range p.Functions() {
		if f.SummarySize == 0 {
			f.SummarySize = realSize(f)
		}
	}
	prof := cfg.Profile
	if prof != nil {
		prof = prof.Clone() // the pipeline consumes/mutates the profile
		if prof.CS {
			PrepareCSProfile(prof, cfg.UsePreInlineDecisions, cfg.CSHotContextThreshold)
		}
		a := Annotate(p, prof)
		st.AnnotatedFuncs = a.Annotated
		st.StaleFuncs = a.Stale
		if cfg.Inference {
			st.InferenceAdjust = inference.InferProgram(p)
		}
		// ICP needs the flat target histograms before the CS inliner
		// consumes the context table.
		var flatView *profdata.Profile
		if !cfg.DisableICP {
			flatView = prof
			if prof.CS {
				flatView = prof.Clone()
				flatView.Flatten()
			}
		}
		// Top-down profile-guided inlining.
		if prof.CS {
			st.SampleInlines = SampleInlineCS(p, prof, st)
		} else {
			st.SampleInlines = SampleInlineAutoFDO(p, cfg.Inline)
		}
		// Indirect-call promotion runs after the sample inliner (so the
		// hot wrappers are already merged into their callers and promotion
		// does not inflate them out of inlining range) and before the
		// bottom-up inliner (so promoted direct calls can inline).
		if !cfg.DisableICP {
			st.ICPromotions = ICPProgram(p, flatView, DefaultICPParams())
		}
	}

	// Early cleanup.
	for _, f := range p.Functions() {
		r := SimplifyCFG(f, false, cfg.Barrier)
		_ = r
		st.DCERemoved += DCE(f)
	}

	// Main bottom-up inliner.
	inl := cfg.Inline
	if cfg.SelectiveInlining {
		// The pre-inliner already claimed the hot paths; the static pass
		// only picks up cheap wins.
		inl.HotThreshold = inl.SizeThreshold
	}
	st.StaticInlines = BottomUpInline(p, inl, prof != nil)

	// Scalar/control-flow pipeline per function.
	for _, f := range p.Functions() {
		st.LICMHoisted += LICM(f)
		if cfg.UnrollFactor >= 2 {
			params := UnrollParams{Factor: cfg.UnrollFactor, MaxBodyInstrs: 10}
			if prof != nil {
				params.HotWeight = hotLoopThreshold(f)
				params.MaxBodyInstrs = 24
			}
			st.Unrolled += Unroll(f, params)
		}
		ic := IfConvert(f, cfg.Barrier, 3)
		st.IfConverts += ic.Converted
		st.IfConvertBlocked += ic.Blocked
		sr := SimplifyCFG(f, true, cfg.Barrier)
		st.TailMerges += sr.TailMerges
		st.TailMergeBlocked += sr.TailMergeBlocked
		st.DCERemoved += DCE(f)
		if cfg.EnableTCE {
			st.TailCalls += TCE(f)
		}
	}

	if prof != nil {
		if cfg.Inference {
			inference.InferProgram(p)
		}
		if cfg.Layout {
			st.LayoutFuncs = LayoutProgram(p)
		}
		if cfg.Split {
			st.SplitBlocks = SplitProgram(p)
		}
	}

	for _, f := range p.Functions() {
		f.RemoveUnreachable()
	}
	DropDeadFunctions(p)
	if err := p.Verify(); err != nil {
		return st, err
	}
	return st, nil
}

// hotLoopThreshold derives a per-function hotness bar for unrolling: a
// multiple of the entry count, so only loops iterating many times per call
// qualify.
func hotLoopThreshold(f *ir.Function) uint64 {
	if !f.HasProfile || f.EntryCount == 0 {
		return 1
	}
	return f.EntryCount * 2
}

// FlattenForAutoFDO converts any profile into the context-insensitive view
// AutoFDO consumes (used when feeding a CS profile to a non-CS pipeline in
// ablations).
func FlattenForAutoFDO(prof *profdata.Profile) *profdata.Profile {
	q := prof.Clone()
	q.Flatten()
	return q
}
