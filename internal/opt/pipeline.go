package opt

import (
	"csspgo/internal/inference"
	"csspgo/internal/ir"
	"csspgo/internal/profdata"
	"csspgo/internal/stale"
)

// Passes with entry points outside this package (or with none at all)
// register here; passes defined in this package register next to their
// entry point.
var (
	inferencePass   = registerPass("inference", flowRestores, semStructural)
	unreachablePass = registerPass("remove-unreachable", flowPreserves, semStructural)
)

// runner sequences registered passes over one program, optionally checking
// every pass boundary (Config.VerifyEach).
type runner struct {
	p     *ir.Program
	cfg   *Config
	check *checker
}

// run executes one pass under its registered identity, opening an
// "opt.<pass>" span on the configured trace (so per-pass timings are
// recorded whether or not checked mode is on). In checked mode the
// structural verifier and the analysis suite run afterwards, and the first
// error-severity finding aborts the pipeline with a *PassViolation naming
// this pass.
func (r *runner) run(id PassID, fn func()) error {
	sp := r.cfg.Trace.Span("opt." + id.name)
	defer sp.End()
	fn()
	if r.cfg.InjectAfter != nil {
		if corrupt := r.cfg.InjectAfter[id.name]; corrupt != nil {
			corrupt(r.p)
		}
	}
	if r.check != nil {
		return r.check.after(id)
	}
	return nil
}

// Optimize runs the full pipeline over the program, mirroring the paper's
// Fig. 1 flow: profile annotation + inference, profile-guided top-down
// inlining (sample loader / early inliner), the scalar and control-flow
// pipeline (SimplifyCFG, DCE, LICM, unroll, if-convert, tail merge), the
// main bottom-up inliner, tail-call elimination, then the profile-consuming
// backend passes (layout, splitting) after a final inference pass restores
// flow consistency. With cfg.VerifyEach, every pass boundary is verified
// and the first violation aborts with a *PassViolation attributing it.
func Optimize(p *ir.Program, cfg *Config) (*Stats, error) {
	st := &Stats{}
	// Record ThinLTO summary sizes on pristine bodies (importability is
	// decided on summaries, not on transformed IR).
	for _, f := range p.Functions() {
		if f.SummarySize == 0 {
			f.SummarySize = realSize(f)
		}
	}
	r := &runner{p: p, cfg: cfg}
	if cfg.VerifyEach || cfg.ValidateSemantics {
		r.check = newChecker(p, cfg)
	}
	prof := cfg.Profile
	var matcher *stale.Matcher
	if cfg.StaleMatching {
		params := stale.DefaultParams()
		if cfg.MinMatchQuality > 0 {
			params.MinQuality = cfg.MinMatchQuality
		}
		matcher = stale.NewMatcher(params)
	}
	if prof != nil {
		prof = prof.Clone() // the pipeline consumes/mutates the profile
		if prof.CS {
			PrepareCSProfile(prof, cfg.UsePreInlineDecisions, cfg.CSHotContextThreshold)
		}
		if err := r.run(annotatePass, func() {
			a := AnnotateWithMatcher(p, prof, matcher)
			a.Publish(cfg.Metrics)
			st.AnnotatedFuncs = a.Annotated
			st.StaleFuncs = a.Stale
			st.MatchedFuncs = a.Matched
			st.FlatFallbackFuncs = a.FlatFallback
			st.RecoveredProbes = a.RecoveredProbes
			if a.Matched > 0 {
				st.MatchQuality = a.QualitySum / float64(a.Matched)
			}
		}); err != nil {
			return st, err
		}
		if cfg.Inference {
			if err := r.run(inferencePass, func() {
				st.InferenceAdjust = inference.InferProgram(p)
			}); err != nil {
				return st, err
			}
		}
		// ICP needs the flat target histograms before the CS inliner
		// consumes the context table.
		var flatView *profdata.Profile
		if !cfg.DisableICP {
			flatView = prof
			if prof.CS {
				flatView = prof.Clone()
				flatView.Flatten()
			}
		}
		// Top-down profile-guided inlining.
		if err := r.run(sampleInlinePass, func() {
			if prof.CS {
				st.SampleInlines = SampleInlineCS(p, prof, matcher, st)
			} else {
				st.SampleInlines = SampleInlineAutoFDO(p, cfg.Inline)
			}
		}); err != nil {
			return st, err
		}
		// Indirect-call promotion runs after the sample inliner (so the
		// hot wrappers are already merged into their callers and promotion
		// does not inflate them out of inlining range) and before the
		// bottom-up inliner (so promoted direct calls can inline).
		if !cfg.DisableICP {
			if err := r.run(icpPass, func() {
				st.ICPromotions = ICPProgram(p, flatView, DefaultICPParams())
			}); err != nil {
				return st, err
			}
		}
	}

	// Early cleanup.
	if err := r.run(simplifyPass, func() {
		for _, f := range p.Functions() {
			sr := SimplifyCFG(f, false, cfg.Barrier)
			st.CFGMerged += sr.Merged
			st.CFGEmptyRemoved += sr.EmptyRemoved
			st.TailMerges += sr.TailMerges
			st.TailMergeBlocked += sr.TailMergeBlocked
		}
	}); err != nil {
		return st, err
	}
	if err := r.run(dcePass, func() {
		for _, f := range p.Functions() {
			st.DCERemoved += DCE(f)
		}
	}); err != nil {
		return st, err
	}

	// Main bottom-up inliner.
	inl := cfg.Inline
	if cfg.SelectiveInlining {
		// The pre-inliner already claimed the hot paths; the static pass
		// only picks up cheap wins.
		inl.HotThreshold = inl.SizeThreshold
	}
	if err := r.run(inlinePass, func() {
		st.StaticInlines = BottomUpInline(p, inl, prof != nil)
	}); err != nil {
		return st, err
	}

	// Scalar/control-flow pipeline.
	if err := r.run(licmPass, func() {
		for _, f := range p.Functions() {
			st.LICMHoisted += LICM(f)
		}
	}); err != nil {
		return st, err
	}
	if cfg.UnrollFactor >= 2 {
		if err := r.run(unrollPass, func() {
			for _, f := range p.Functions() {
				params := UnrollParams{Factor: cfg.UnrollFactor, MaxBodyInstrs: 10}
				if prof != nil {
					params.HotWeight = hotLoopThreshold(f)
					params.MaxBodyInstrs = 24
				}
				st.Unrolled += Unroll(f, params)
			}
		}); err != nil {
			return st, err
		}
	}
	if err := r.run(ifConvertPass, func() {
		for _, f := range p.Functions() {
			ic := IfConvert(f, cfg.Barrier, 3)
			st.IfConverts += ic.Converted
			st.IfConvertBlocked += ic.Blocked
		}
	}); err != nil {
		return st, err
	}
	if err := r.run(simplifyPass, func() {
		for _, f := range p.Functions() {
			sr := SimplifyCFG(f, true, cfg.Barrier)
			st.CFGMerged += sr.Merged
			st.CFGEmptyRemoved += sr.EmptyRemoved
			st.TailMerges += sr.TailMerges
			st.TailMergeBlocked += sr.TailMergeBlocked
		}
	}); err != nil {
		return st, err
	}
	if err := r.run(dcePass, func() {
		for _, f := range p.Functions() {
			st.DCERemoved += DCE(f)
		}
	}); err != nil {
		return st, err
	}
	if cfg.EnableTCE {
		if err := r.run(tcePass, func() {
			for _, f := range p.Functions() {
				st.TailCalls += TCE(f)
			}
		}); err != nil {
			return st, err
		}
	}

	if prof != nil {
		if cfg.Inference {
			if err := r.run(inferencePass, func() {
				inference.InferProgram(p)
			}); err != nil {
				return st, err
			}
		}
		if cfg.Layout {
			if err := r.run(layoutPass, func() {
				st.LayoutFuncs = LayoutProgram(p)
			}); err != nil {
				return st, err
			}
		}
		if cfg.Split {
			if err := r.run(splitPass, func() {
				st.SplitBlocks = SplitProgram(p)
			}); err != nil {
				return st, err
			}
		}
	}

	if err := r.run(unreachablePass, func() {
		for _, f := range p.Functions() {
			f.RemoveUnreachable()
		}
	}); err != nil {
		return st, err
	}
	if err := r.run(deadFuncPass, func() {
		DropDeadFunctions(p)
	}); err != nil {
		return st, err
	}
	if err := p.Verify(); err != nil {
		return st, err
	}
	st.Publish(cfg.Metrics)
	if matcher != nil {
		matcher.Stats.Publish(cfg.Metrics)
	}
	return st, nil
}

// hotLoopThreshold derives a per-function hotness bar for unrolling: a
// multiple of the entry count, so only loops iterating many times per call
// qualify.
func hotLoopThreshold(f *ir.Function) uint64 {
	if !f.HasProfile || f.EntryCount == 0 {
		return 1
	}
	return f.EntryCount * 2
}

// FlattenForAutoFDO converts any profile into the context-insensitive view
// AutoFDO consumes (used when feeding a CS profile to a non-CS pipeline in
// ablations).
func FlattenForAutoFDO(prof *profdata.Profile) *profdata.Profile {
	q := prof.Clone()
	q.Flatten()
	return q
}
