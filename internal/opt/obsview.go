package opt

import "csspgo/internal/obs"

// This file is the bridge between the pipeline's Stats structs and the
// unified metric registry: the structs remain the Go API, and Publish
// projects them into the obs namespace as thin views. Every name is a
// catalog constant, so the analysis metric lint audits the whole mapping.

// Publish records the pipeline stats into the unified registry (nil-safe).
func (st *Stats) Publish(reg *obs.Registry) {
	if reg == nil || st == nil {
		return
	}
	reg.Counter(obs.MOptInlineSample).Add(int64(st.SampleInlines))
	reg.Counter(obs.MOptInlineStatic).Add(int64(st.StaticInlines))
	reg.Counter(obs.MOptICPromotions).Add(int64(st.ICPromotions))
	reg.Counter(obs.MOptInferenceAdjusted).Add(int64(st.InferenceAdjust))
	reg.Counter(obs.MOptCFGMerged).Add(int64(st.CFGMerged))
	reg.Counter(obs.MOptCFGEmptyRemoved).Add(int64(st.CFGEmptyRemoved))
	reg.Counter(obs.MOptTailMerges).Add(int64(st.TailMerges))
	reg.Counter(obs.MOptTailMergeBlocked).Add(int64(st.TailMergeBlocked))
	reg.Counter(obs.MOptIfConverts).Add(int64(st.IfConverts))
	reg.Counter(obs.MOptIfConvertBlocked).Add(int64(st.IfConvertBlocked))
	reg.Counter(obs.MOptUnrolled).Add(int64(st.Unrolled))
	reg.Counter(obs.MOptLICMHoisted).Add(int64(st.LICMHoisted))
	reg.Counter(obs.MOptDCERemoved).Add(int64(st.DCERemoved))
	reg.Counter(obs.MOptTailCalls).Add(int64(st.TailCalls))
	reg.Counter(obs.MOptSplitBlocks).Add(int64(st.SplitBlocks))
	reg.Counter(obs.MOptLayoutFuncs).Add(int64(st.LayoutFuncs))
	// Degradation-ladder outcomes (zero on non-StaleMatching builds).
	reg.Counter(obs.MStaleMatchedFuncs).Add(int64(st.MatchedFuncs))
	reg.Counter(obs.MStaleFlatFallback).Add(int64(st.FlatFallbackFuncs))
	reg.Counter(obs.MStaleMatchedContexts).Add(int64(st.MatchedContexts))
	reg.Counter(obs.MStaleRecoveredProbes).Add(int64(st.RecoveredProbes))
	reg.Gauge(obs.MStaleMeanMatchQuality).Set(st.MatchQuality)
}

// Publish records annotation outcomes into the unified registry (nil-safe).
func (a AnnotateStats) Publish(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter(obs.MAnnotateFuncs).Add(int64(a.Annotated))
	reg.Counter(obs.MAnnotateStale).Add(int64(a.Stale))
	reg.Counter(obs.MAnnotateNoProfile).Add(int64(a.NoProfile))
}
