package opt

import "csspgo/internal/ir"

// TCE marks tail calls: a call whose result immediately feeds the block's
// return becomes a frame-reusing transfer. Tail-call elimination is the
// optimization that breaks frame-pointer stack sampling (the returning
// function's caller frame disappears), exercising the profiler's
// missing-frame inferrer. Returns the number of calls marked.
// tcePass only flags calls as tail calls; the CFG is untouched.
var tcePass = registerPass("tce", flowPreserves, semStructural)

func TCE(f *ir.Function) int {
	marked := 0
	for _, b := range f.Blocks {
		if b.Term.Kind != ir.TermReturn || len(b.Instrs) == 0 {
			continue
		}
		last := &b.Instrs[len(b.Instrs)-1]
		if last.Op != ir.OpCall || last.TailCall {
			continue
		}
		if last.Dst == ir.NoReg || b.Term.Val != last.Dst {
			continue
		}
		last.TailCall = true
		marked++
	}
	return marked
}

// TCEProgram applies TCE everywhere.
func TCEProgram(p *ir.Program) int {
	n := 0
	for _, f := range p.Functions() {
		n += TCE(f)
	}
	return n
}
