package opt

import "csspgo/internal/ir"

// DCE removes pure instructions whose results are never used, iterating to
// a fixed point. Probes, counters, stores and calls are never removed.
// Returns the number of instructions deleted.
// dcePass removes only pure unused instructions — the CFG, block weights and
// edge weights are untouched, so flow conservation is preserved.
var dcePass = registerPass("dce", flowPreserves, semStructural)

func DCE(f *ir.Function) int {
	removed := 0
	for {
		out := liveOut(f)
		changed := false
		for _, b := range f.Blocks {
			live := out[b].clone()
			termUses(&b.Term, live.set)
			// Walk backwards, deleting dead pure defs.
			kept := b.Instrs[:0]
			// Collect deletions first (backward), then rebuild forward.
			dead := make([]bool, len(b.Instrs))
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := &b.Instrs[i]
				d := def(in)
				if !hasSideEffects(in) && d >= 0 && !live.has(d) {
					dead[i] = true
					continue
				}
				if d >= 0 {
					live.clear(d)
				}
				uses(in, live.set)
			}
			for i := range b.Instrs {
				if dead[i] {
					removed++
					changed = true
					continue
				}
				kept = append(kept, b.Instrs[i])
			}
			b.Instrs = append([]ir.Instr(nil), kept...)
		}
		if !changed {
			return removed
		}
	}
}
