package opt

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"csspgo/internal/analysis/tv"
	"csspgo/internal/ir"
	"csspgo/internal/irgen"
	"csspgo/internal/obs"
	"csspgo/internal/probe"
	"csspgo/internal/source"
)

// tvSrc exercises branches, loops, calls and globals so every injection
// kind has an eligible site.
const tvSrc = `
global g0;
global hist[4];

func main(n, seed) {
	var s = 0;
	for (var i = 0; i < n % 20 + 8; i = i + 1) {
		if (i % 3 == 0) { s = s + work(i, seed); } else { s = s - i; }
		hist[i % 4] = hist[i % 4] + 1;
	}
	g0 = g0 + s % 97;
	return s + g0;
}
func work(x, y) {
	var acc = y;
	var k = x % 5 + 1;
	while (k > 0) { acc = acc + x % 7; k = k - 1; }
	return acc;
}
`

// tvProgram lowers tvSrc with probes, ready for a training pipeline.
func tvProgram(t *testing.T) *ir.Program {
	t.Helper()
	f, err := source.Parse("tv.ml", tvSrc)
	if err != nil {
		t.Fatal(err)
	}
	p, err := irgen.Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	probe.InsertProgram(p)
	return p
}

// tvTrainingConfig is the training pipeline with translation validation on.
func tvTrainingConfig() *Config {
	cfg := TrainingConfig()
	cfg.Barrier = BarrierWeak
	cfg.VerifyEach = true
	cfg.ValidateSemantics = true
	return cfg
}

func TestValidateSemanticsCleanTrainingPipeline(t *testing.T) {
	p := tvProgram(t)
	cfg := tvTrainingConfig()
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	if _, err := Optimize(p, cfg); err != nil {
		t.Fatalf("translation validation rejected a healthy pipeline: %v", err)
	}
	if reg.Counter(obs.MTVPassesValidated).Value() == 0 {
		t.Fatal("analysis.tv.passes_validated not published")
	}
	if reg.Counter(obs.MTVOracleRuns).Value() == 0 {
		t.Fatal("analysis.tv.oracle_runs not published")
	}
	if reg.Counter(obs.MTVViolations).Value() != 0 {
		t.Fatal("violations counted on a clean pipeline")
	}
}

func TestValidateSemanticsCleanProfiledPipeline(t *testing.T) {
	p, cfg := checkedConfig(t)
	cfg.ValidateSemantics = true
	if _, err := Optimize(p, cfg); err != nil {
		t.Fatalf("translation validation rejected a healthy profiled pipeline: %v", err)
	}
}

// The miscompile-injection matrix: every kind at every always-run pass
// boundary must be detected and attributed to exactly that pass, with zero
// false negatives.
func TestMiscompileInjectionMatrix(t *testing.T) {
	passes := []string{"simplify-cfg", "dce", "inline", "licm", "unroll",
		"if-convert", "tce", "remove-unreachable", "drop-dead-functions"}
	for _, kind := range tv.Injections() {
		for _, pass := range passes {
			kind, pass := kind, pass
			t.Run(fmt.Sprintf("%s@%s", kind, pass), func(t *testing.T) {
				p := tvProgram(t)
				cfg := tvTrainingConfig()
				applied := ""
				cfg.InjectAfter = map[string]func(*ir.Program){pass: func(p *ir.Program) {
					if d, ok := tv.Apply(p, kind, 1); ok {
						applied = d
					}
				}}
				_, err := Optimize(p, cfg)
				if applied == "" {
					t.Fatalf("no eligible injection site at %s", pass)
				}
				var pv *PassViolation
				if !errors.As(err, &pv) {
					t.Fatalf("injected %q undetected (err=%v)", applied, err)
				}
				if pv.Pass != pass {
					t.Fatalf("attributed to %q, want %q (injected %q)", pv.Pass, pass, applied)
				}
				for _, d := range pv.Diags {
					if d.Pass != pass {
						t.Fatalf("diagnostic not stamped with the pass: %v", d)
					}
				}
			})
		}
	}
}

// The satellite golden-diff check: a seeded simplify-cfg miscompile must
// produce a PassViolation whose before/after diff shows the IR change, and
// whose findings come from the tv checks (flow stays balanced by design, so
// the PR-1 flow checker must NOT be what fires).
func TestTVViolationGoldenDiff(t *testing.T) {
	p := tvProgram(t)
	cfg := tvTrainingConfig()
	cfg.InjectAfter = map[string]func(*ir.Program){"simplify-cfg": func(p *ir.Program) {
		if _, ok := tv.Apply(p, tv.InjSwapSuccessors, 1); !ok {
			t.Fatal("no branch to swap")
		}
	}}
	_, err := Optimize(p, cfg)
	var pv *PassViolation
	if !errors.As(err, &pv) {
		t.Fatalf("want *PassViolation, got %v", err)
	}
	if pv.Pass != "simplify-cfg" || pv.Func != "main" {
		t.Fatalf("attributed to %s/%s, want simplify-cfg/main", pv.Pass, pv.Func)
	}
	for _, d := range pv.Diags {
		if !strings.HasPrefix(d.Check, "tv-") {
			t.Fatalf("non-tv check fired on a flow-balanced miscompile: %v", d)
		}
	}
	diff := pv.Diff()
	if !strings.Contains(diff, "- ") || !strings.Contains(diff, "+ ") {
		t.Fatalf("diff shows no change:\n%s", diff)
	}
	// The swap rewrites a branch terminator: the diff must touch a br line.
	var touchedBranch bool
	for _, line := range strings.Split(diff, "\n") {
		if (strings.HasPrefix(line, "- ") || strings.HasPrefix(line, "+ ")) &&
			strings.Contains(line, "br ") {
			touchedBranch = true
		}
	}
	if !touchedBranch {
		t.Fatalf("diff does not show the rewritten branch:\n%s", diff)
	}
	if !strings.Contains(pv.Report(), "simplify-cfg") {
		t.Fatal("report does not name the pass")
	}
}

// Without ValidateSemantics, a flow-balanced miscompile sails through both
// the plain pipeline and VerifyEach — the tv tier is what catches it.
func TestFlowBalancedMiscompileNeedsTV(t *testing.T) {
	p := tvProgram(t)
	cfg := tvTrainingConfig()
	cfg.ValidateSemantics = false
	cfg.InjectAfter = map[string]func(*ir.Program){"dce": func(p *ir.Program) {
		tv.Apply(p, tv.InjSwapSuccessors, 1)
	}}
	if _, err := Optimize(p, cfg); err != nil {
		t.Fatalf("VerifyEach alone should not catch a flow-balanced swap, got %v", err)
	}
}

// FuzzTranslationValidate runs the probed training pipeline under full
// translation validation on random programs: any reported violation is
// either a real miscompile or a validator false positive — both bugs.
func FuzzTranslationValidate(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 99, 1234, 31337} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		src := generateProgram(seed)
		sf, err := source.Parse("fuzz.ml", src)
		if err != nil {
			t.Skip() // generator emitted something unparsable; not tv's bug
		}
		p, err := irgen.Lower(sf)
		if err != nil {
			t.Skip()
		}
		probe.InsertProgram(p)
		cfg := tvTrainingConfig()
		if _, err := Optimize(p, cfg); err != nil {
			t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, src)
		}
	})
}
