package opt

import (
	"fmt"
	"sort"
)

// flowEffect says what a pass does to profile flow consistency — the
// property inference establishes and the analysis suite's Kirchhoff check
// validates. Checked pipeline mode only runs the flow check while a
// restoring pass's guarantee is still in force.
type flowEffect uint8

const (
	// flowPerturbs: the pass rewrites the CFG or weights without keeping
	// edge flows conserved (inliners, SimplifyCFG, unroll, ...).
	flowPerturbs flowEffect = iota
	// flowPreserves: the pass leaves block and edge weights conserved if
	// they already were (layout, splitting, DCE, TCE, cleanup).
	flowPreserves
	// flowRestores: the pass re-establishes flow consistency (inference).
	flowRestores
)

// semContract says what a pass is allowed to do to program semantics — the
// translation validator (Config.ValidateSemantics) picks its proof
// obligation per pass from this registration, the same way checked mode
// picks the flow check from flowEffect.
type semContract uint8

const (
	// semStructural: the pass may delete dead code, reorder blocks, mark
	// sections or rewrite metadata, but every surviving block must keep its
	// I/O behavior — validated by effect-summary equality, CFG bisimulation
	// and the differential oracle (annotate, inference, DCE, TCE, layout,
	// split, cleanup, dead-function dropping).
	semStructural semContract = iota
	// semRestructures: the pass rewrites the CFG wholesale (inliners, ICP,
	// SimplifyCFG, LICM, unroll, if-convert) — block-level bisimulation
	// would reject legal rewrites, so effect-growth checks and the
	// differential oracle carry the proof alone.
	semRestructures
)

// PassID names a registered optimization pass. Every pass entry point
// registers itself once; pipeline and checked mode refer to passes only
// through their registration, which is what makes violation attribution
// ("pass X broke function Y") possible.
type PassID struct {
	name string
	flow flowEffect
	sem  semContract
}

// Name returns the registered pass name.
func (p PassID) Name() string { return p.name }

var passRegistry = map[string]PassID{}

// registerPass records a pass name at init time. Duplicate names are a
// programming error: attribution would be ambiguous.
func registerPass(name string, fe flowEffect, sc semContract) PassID {
	if _, dup := passRegistry[name]; dup {
		panic(fmt.Sprintf("opt: duplicate pass registration %q", name))
	}
	id := PassID{name: name, flow: fe, sem: sc}
	passRegistry[name] = id
	return id
}

// PassNames lists every registered pass in sorted order (for documentation
// and CLI help).
func PassNames() []string {
	names := make([]string, 0, len(passRegistry))
	for n := range passRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
