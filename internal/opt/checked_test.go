package opt

import (
	"errors"
	"strings"
	"testing"

	"csspgo/internal/ir"
	"csspgo/internal/irgen"
	"csspgo/internal/probe"
	"csspgo/internal/source"
)

const checkedSrc = `
func main(n, seed) {
	var s = 0;
	for (var i = 0; i < n % 30 + 10; i = i + 1) {
		if (i % 3 == 0) { s = s + work(i); } else { s = s + i; }
	}
	return s;
}
func work(x) {
	var acc = 0;
	var k = x % 5;
	while (k > 0) { acc = acc + x % 7; k = k - 1; }
	return acc;
}
`

// checkedConfig returns the full profiled pipeline with VerifyEach on, plus
// the probed program it should optimize.
func checkedConfig(t *testing.T) (*ir.Program, *Config) {
	t.Helper()
	prof := runTrainingBuild(t, checkedSrc)
	f, err := source.Parse("checked.ml", checkedSrc)
	if err != nil {
		t.Fatal(err)
	}
	p, err := irgen.Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	probe.InsertProgram(p)
	cfg := &Config{
		Profile: prof, Barrier: BarrierWeak, Inference: true,
		Inline: DefaultInlineParams(), UnrollFactor: 4,
		EnableTCE: true, Layout: true, Split: true,
		CSHotContextThreshold: 2,
		VerifyEach:            true,
	}
	return p, cfg
}

func TestVerifyEachCleanPipeline(t *testing.T) {
	p, cfg := checkedConfig(t)
	if _, err := Optimize(p, cfg); err != nil {
		t.Fatalf("checked mode rejected a healthy pipeline: %v", err)
	}
}

// The ISSUE's regression shape: a pass deliberately corrupts an edge weight;
// checked mode must attribute the resulting flow-conservation violation to
// exactly that pass and function, with a usable before/after diff.
func TestVerifyEachAttributesEdgeWeightCorruption(t *testing.T) {
	p, cfg := checkedConfig(t)
	cfg.InjectAfter = map[string]func(*ir.Program){
		// layout preserves the flow guarantee inference established right
		// before it, so the checker is watching flow when layout "breaks".
		"layout": func(p *ir.Program) {
			f := p.Funcs["main"]
			for _, b := range f.ReachableOrder() {
				if len(b.Term.EdgeW) > 0 {
					b.Term.EdgeW[0] += 12345
					return
				}
			}
			t.Fatal("no edge weights to corrupt")
		},
	}
	_, err := Optimize(p, cfg)
	var pv *PassViolation
	if !errors.As(err, &pv) {
		t.Fatalf("want *PassViolation, got %v", err)
	}
	if pv.Pass != "layout" {
		t.Fatalf("violation attributed to %q, want \"layout\"", pv.Pass)
	}
	if pv.Func != "main" {
		t.Fatalf("violation in %q, want \"main\"", pv.Func)
	}
	if len(pv.Diags) == 0 || pv.Diags[0].Check != "flow-conservation" {
		t.Fatalf("want flow-conservation finding, got %v", pv.Diags)
	}
	for _, d := range pv.Diags {
		if d.Pass != "layout" {
			t.Fatalf("diagnostic not stamped with the pass: %v", d)
		}
	}
	diff := pv.Diff()
	if !strings.Contains(diff, "+ ") || !strings.Contains(diff, "- ") {
		t.Fatalf("before/after diff shows no change:\n%s", diff)
	}
	if !strings.Contains(pv.Report(), "layout") {
		t.Fatal("report does not name the pass")
	}
}

// Second corruption class from the ISSUE: a pass mangles a probe payload.
func TestVerifyEachAttributesProbePayloadCorruption(t *testing.T) {
	p, cfg := checkedConfig(t)
	cfg.InjectAfter = map[string]func(*ir.Program){
		"unroll": func(p *ir.Program) {
			f := p.Funcs["main"]
			for _, b := range f.Blocks {
				for i := range b.Instrs {
					if b.Instrs[i].Op == ir.OpProbe && b.Instrs[i].Probe != nil {
						b.Instrs[i].Probe.Factor = 0 // would zero counts at annotation
						return
					}
				}
			}
			t.Fatal("no probe to corrupt")
		},
	}
	_, err := Optimize(p, cfg)
	var pv *PassViolation
	if !errors.As(err, &pv) {
		t.Fatalf("want *PassViolation, got %v", err)
	}
	if pv.Pass != "unroll" || pv.Func != "main" {
		t.Fatalf("attributed to %s/%s, want unroll/main", pv.Pass, pv.Func)
	}
	e := pv.Diags[0]
	if e.Check != "probe-placement" || !strings.Contains(e.Msg, "duplication factor") {
		t.Fatalf("want probe factor finding, got %v", pv.Diags)
	}
}

// Without VerifyEach the same corruption sails through — the checked mode is
// what catches it, not the pipeline itself.
func TestCorruptionUndetectedWithoutVerifyEach(t *testing.T) {
	p, cfg := checkedConfig(t)
	cfg.VerifyEach = false
	cfg.InjectAfter = map[string]func(*ir.Program){
		"layout": func(p *ir.Program) {
			f := p.Funcs["main"]
			for _, b := range f.ReachableOrder() {
				if len(b.Term.EdgeW) > 0 {
					b.Term.EdgeW[0] += 12345
					return
				}
			}
		},
	}
	if _, err := Optimize(p, cfg); err != nil {
		t.Fatalf("plain mode should not detect weight corruption, got %v", err)
	}
}

func TestPassRegistryNames(t *testing.T) {
	names := PassNames()
	want := []string{"annotate", "dce", "drop-dead-functions", "icp", "if-convert",
		"inference", "inline", "layout", "licm", "remove-unreachable",
		"sample-inline", "simplify-cfg", "split", "tce", "unroll"}
	if len(names) != len(want) {
		t.Fatalf("registered passes = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registered passes = %v, want %v", names, want)
		}
	}
}
