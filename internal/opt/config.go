// Package opt implements the optimization pipeline: profile annotation,
// profile-guided and static inlining, SimplifyCFG with tail merging, LICM,
// loop unrolling, if-conversion, dead-code elimination, tail-call
// elimination, Ext-TSP-style block layout and hot/cold function splitting —
// each maintaining profile data the way the paper's Fig. 1 "profile
// maintenance" component requires, and each interacting with pseudo-probes
// per the configured barrier strength.
package opt

import (
	"csspgo/internal/ir"
	"csspgo/internal/obs"
	"csspgo/internal/profdata"
)

// BarrierStrength says how strongly probes block control-flow-merging
// optimizations (the paper's tunable overhead/accuracy knob, §III.A).
type BarrierStrength uint8

const (
	// BarrierNone: no probes present, or probes ignored entirely.
	BarrierNone BarrierStrength = iota
	// BarrierWeak: the production pseudo-instrumentation tuning — tail
	// merge is blocked (probe signatures differ per block) but if-convert
	// and similar critical optimizations were fine-tuned to proceed,
	// trading a sliver of profile accuracy for near-zero overhead.
	BarrierWeak
	// BarrierStrong: traditional instrumentation semantics — counters
	// block both code merge and if-conversion.
	BarrierStrong
)

// InlineParams tunes the inliners.
type InlineParams struct {
	// SizeThreshold admits callees up to this many real (non-probe)
	// instructions for static inlining.
	SizeThreshold int
	// HotThreshold admits callees at hot call sites up to this size.
	HotThreshold int
	// TinyThreshold always inlines callees at or below this size, even at
	// cold call sites.
	TinyThreshold int
	// HotCallsiteFraction: a call site is hot when its block weight is at
	// least this fraction (x1000) of the function's entry weight.
	HotCallsiteFraction int
	// GrowthCap stops inlining into a caller once it exceeds this many
	// instructions.
	GrowthCap int
	// ImportThreshold bounds cross-module (ThinLTO summary import)
	// inlining: callees larger than this cannot be imported unless a
	// pre-inliner decision forces them.
	ImportThreshold int
}

// DefaultInlineParams returns -O2-flavoured inlining thresholds.
func DefaultInlineParams() InlineParams {
	return InlineParams{
		SizeThreshold:       18,
		HotThreshold:        60,
		TinyThreshold:       6,
		HotCallsiteFraction: 500,
		GrowthCap:           700,
		ImportThreshold:     30,
	}
}

// Config drives one compilation's optimization pipeline.
type Config struct {
	// Profile is the input PGO profile (nil for a training build).
	Profile *profdata.Profile
	// UsePreInlineDecisions honors ShouldInline decisions persisted in a
	// context-sensitive profile by the offline pre-inliner.
	UsePreInlineDecisions bool
	// Barrier is the probe barrier strength in effect.
	Barrier BarrierStrength
	// Inference runs MCF profile inference after annotation (profi).
	Inference bool
	// Inline tunes both inliners.
	Inline InlineParams
	// UnrollFactor for hot loops (profiled builds); training builds unroll
	// tiny loops by 2. 0 disables unrolling.
	UnrollFactor int
	// EnableTCE turns call+return pairs into frame-reusing tail calls.
	EnableTCE bool
	// Layout reorders blocks by edge weights (needs a profile).
	Layout bool
	// Split moves never-sampled blocks of hot functions into the cold
	// section (needs a profile).
	Split bool
	// DisableICP turns off indirect-call promotion.
	DisableICP bool
	// SelectiveInlining damps the bottom-up inliner's hot-site boost —
	// used by full CSSPGO, where the pre-inliner already made the global
	// hot-path decisions and extra static inlining only grows code.
	SelectiveInlining bool
	// CSHotContextThreshold: when using a CS profile without pre-inliner
	// decisions, contexts at least this hot are inlined by the top-down
	// sample inliner.
	CSHotContextThreshold uint64
	// StaleMatching enables the anchor-based stale-profile matcher: on a
	// CFG-checksum mismatch the function profile degrades down the ladder
	// (anchor-matched, then flat fallback) instead of being dropped.
	StaleMatching bool
	// MinMatchQuality overrides the matcher's minimum acceptable match
	// quality (0 = stale.DefaultParams().MinQuality).
	MinMatchQuality float64
	// VerifyEach enables checked pipeline mode (LLVM -verify-each style):
	// after every pass, Function.Verify and the analysis suite run over the
	// whole program, and the first error-severity finding aborts Optimize
	// with a *PassViolation naming the offending pass and function, with a
	// before/after IR diff of that function.
	VerifyEach bool
	// ValidateSemantics enables the translation-validation tier on top of
	// VerifyEach: after every pass, the internal/analysis/tv validator
	// proves the before/after IR semantically equivalent under the pass's
	// registered contract (effect-summary checks, CFG bisimulation for
	// structure-preserving passes, and a differential-execution oracle on
	// seeded corpus inputs). Violations abort with a *PassViolation exactly
	// like VerifyEach findings. Implies checked mode.
	ValidateSemantics bool
	// TVInputs sizes the oracle corpus per pass boundary (0 = tv default).
	TVInputs int
	// TVMaxSteps bounds one interpreted oracle run (0 = tv default).
	TVMaxSteps uint64
	// Trace receives one child span per executed pass ("opt.<pass>"), in
	// checked and unchecked mode alike (nil = no tracing), plus a
	// "tv.<pass>" child per validated boundary when ValidateSemantics is on.
	Trace *obs.Span
	// Metrics is the unified metric registry the pipeline's Stats publish
	// into at the end of Optimize (nil = no publication).
	Metrics *obs.Registry

	// InjectAfter runs a deliberate program mutation right after the named
	// pass runs and before its checks fire — the miscompile-injection
	// harness (tv.Apply) and checked-mode tests use it to prove detection
	// and attribution land on that pass. Nil in production builds.
	InjectAfter map[string]func(*ir.Program)
}

// TrainingConfig is the -O2, no-PGO pipeline used to build profiling
// binaries.
func TrainingConfig() *Config {
	return &Config{
		Inline:       DefaultInlineParams(),
		UnrollFactor: 2, // static unrolling of small loops, like -O2
		EnableTCE:    true,
		Barrier:      BarrierNone,
	}
}

// Stats reports what the pipeline did.
type Stats struct {
	AnnotatedFuncs int
	StaleFuncs     int
	// Degradation-ladder outcomes (StaleMatching builds).
	MatchedFuncs      int     // stale base profiles recovered by the anchor matcher
	FlatFallbackFuncs int     // stale base profiles degraded to the flat fallback
	MatchedContexts   int     // stale context profiles remapped for CS inlining
	RecoveredProbes   int     // old probe IDs whose counts the matcher transferred
	MatchQuality      float64 // mean match quality over MatchedFuncs
	InferenceAdjust   int
	SampleInlines     int
	StaticInlines     int
	CFGMerged         int
	CFGEmptyRemoved   int
	TailMerges        int
	TailMergeBlocked  int
	IfConverts        int
	IfConvertBlocked  int
	Unrolled          int
	LICMHoisted       int
	DCERemoved        int
	TailCalls         int
	SplitBlocks       int
	LayoutFuncs       int
	ICPromotions      int
}
