package opt

import "csspgo/internal/ir"

// UnrollParams controls loop unrolling.
type UnrollParams struct {
	// Factor is the unroll factor for qualifying loops (≥2).
	Factor int
	// MaxBodyInstrs bounds the body size (real instructions).
	MaxBodyInstrs int
	// HotWeight: with a profile, only loops whose header weight reaches
	// this value unroll. Zero means no hotness requirement.
	HotWeight uint64
}

// Unroll performs exit-check unrolling of simple two-block loops
// (header: cond-branch {body, exit}; body: … jump header): the body and
// header test are replicated Factor-1 times, so each trip through the
// rotated loop retires Factor bodies with Factor exit checks but only one
// back edge. This is the code-duplication class of optimization: cloned
// instructions share source lines (no discriminators) and cloned probes
// share probe IDs, so line-based correlation undercounts (max heuristic)
// while probe-based correlation stays exact (sum). Block weights and edge
// weights are divided by Factor to maintain the profile.
//
// Returns the number of loops unrolled.
// unrollPass replicates loop bodies and rescales weights heuristically.
var unrollPass = registerPass("unroll", flowPerturbs, semRestructures)

func Unroll(f *ir.Function, p UnrollParams) int {
	if p.Factor < 2 {
		return 0
	}
	unrolled := 0
	for _, loop := range f.NaturalLoops() {
		if unrollLoop(f, loop, p) {
			unrolled++
		}
	}
	if unrolled > 0 {
		f.RebuildCFG()
	}
	return unrolled
}

func unrollLoop(f *ir.Function, loop *ir.Loop, p UnrollParams) bool {
	if len(loop.Blocks) != 2 || len(loop.Latches) != 1 {
		return false
	}
	header := loop.Header
	body := loop.Latches[0]
	if header.Term.Kind != ir.TermBranch || body.Term.Kind != ir.TermJump {
		return false
	}
	if header.Term.Succs[0] != body || body.Term.Succs[0] != header {
		return false
	}
	real := 0
	for i := range body.Instrs {
		if body.Instrs[i].Op != ir.OpProbe {
			real++
		}
	}
	if real == 0 || real > p.MaxBodyInstrs {
		return false
	}
	// Calls in the body would grow code too fast; skip.
	for i := range body.Instrs {
		if body.Instrs[i].Op == ir.OpCall {
			return false
		}
	}
	if p.HotWeight > 0 && (!header.HasWeight || header.Weight < p.HotWeight) {
		return false
	}

	exit := header.Term.Succs[1]
	factor := uint64(p.Factor)

	// Build copies: body → H1 → B1 → H2 → … → B_{F-1} → header.
	prevTail := body // block whose jump we rewire next
	for k := 1; k < p.Factor; k++ {
		hmap := ir.CloneRegion(f, []*ir.Block{header}, nil)
		bmap := ir.CloneRegion(f, []*ir.Block{body}, nil)
		hc, bc := hmap[header], bmap[body]
		// Header copy: branch to body copy or exit.
		hc.Term.Succs[0] = bc
		hc.Term.Succs[1] = exit
		// Body copy: jump to… patched next iteration (default header).
		bc.Term.Succs[0] = header
		prevTail.Term.Succs[0] = hc
		prevTail = bc
	}

	// Profile maintenance: the header and body (and their copies) now each
	// execute ~1/Factor of the original trips.
	scaleBlock := func(b *ir.Block) {
		if b.HasWeight {
			b.Weight /= factor
		}
		for i := range b.Term.EdgeW {
			b.Term.EdgeW[i] /= factor
		}
	}
	f.RebuildCFG()
	scaleBlock(header)
	scaleBlock(body)
	// CloneRegion appended the 2*(Factor-1) copies at the end; scale them
	// too (they were cloned with the pre-scale weights).
	n := len(f.Blocks)
	for i := n - 2*(p.Factor-1); i >= 0 && i < n; i++ {
		scaleBlock(f.Blocks[i])
	}
	return true
}
