package opt

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"csspgo/internal/analysis"
	"csspgo/internal/codegen"
	"csspgo/internal/ir"
	"csspgo/internal/irgen"
	"csspgo/internal/probe"
	"csspgo/internal/profdata"
	"csspgo/internal/sampling"
	"csspgo/internal/sim"
	"csspgo/internal/source"
)

// This file is a randomized semantic-preservation harness: seeded random
// MiniLang programs are compiled at every optimization configuration —
// training pipelines at all barrier strengths and full PGO pipelines with
// real collected profiles — and must produce bit-identical outputs to the
// unoptimized build on shared inputs. It is the broadest correctness net
// over the optimizer, inliners, ICP, layout, splitting and codegen.

// progGen emits random but well-formed MiniLang programs.
type progGen struct {
	rng   *rand.Rand
	sb    strings.Builder
	fns   []string // callable function names (no recursion risk: call only earlier)
	loops int
}

func (g *progGen) expr(depth int, vars []string) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return fmt.Sprint(g.rng.Intn(100))
		case 1:
			if len(vars) > 0 {
				return vars[g.rng.Intn(len(vars))]
			}
			return fmt.Sprint(g.rng.Intn(10))
		default:
			if len(g.fns) > 0 && depth > 0 {
				fn := g.fns[g.rng.Intn(len(g.fns))]
				return fmt.Sprintf("%s(%s, %s)", fn, g.expr(0, vars), g.expr(0, vars))
			}
			return fmt.Sprint(g.rng.Intn(50))
		}
	}
	ops := []string{"+", "-", "*", "/", "%"}
	op := ops[g.rng.Intn(len(ops))]
	l := g.expr(depth-1, vars)
	r := g.expr(depth-1, vars)
	if op == "/" || op == "%" {
		// Avoid trivially-zero divisors but keep them dynamic.
		r = fmt.Sprintf("(%s + 3)", r)
	}
	return fmt.Sprintf("(%s %s %s)", l, op, r)
}

func (g *progGen) cond(vars []string) string {
	cmps := []string{"<", "<=", ">", ">=", "==", "!="}
	c := fmt.Sprintf("%s %s %s", g.expr(1, vars), cmps[g.rng.Intn(6)], g.expr(1, vars))
	if g.rng.Intn(4) == 0 {
		c = fmt.Sprintf("%s && %s != 0", c, g.expr(1, vars))
	}
	return c
}

// assignable filters out loop induction variables (named i…): assigning
// to them inside their own loop could make the loop non-terminating.
func assignable(vars []string) []string {
	out := make([]string, 0, len(vars))
	for _, v := range vars {
		if !strings.HasPrefix(v, "i") {
			out = append(out, v)
		}
	}
	return out
}

func (g *progGen) stmts(indent string, depth int, vars []string) string {
	var sb strings.Builder
	n := 1 + g.rng.Intn(3)
	for i := 0; i < n; i++ {
		switch g.rng.Intn(6) {
		case 0:
			name := fmt.Sprintf("v%d", g.rng.Int31n(1000))
			fmt.Fprintf(&sb, "%svar %s = %s;\n", indent, name, g.expr(2, vars))
			vars = append(vars, name)
		case 1:
			if av := assignable(vars); len(av) > 0 {
				fmt.Fprintf(&sb, "%s%s = %s;\n", indent, av[g.rng.Intn(len(av))], g.expr(2, vars))
			}
		case 2:
			if depth > 0 {
				fmt.Fprintf(&sb, "%sif (%s) {\n%s%s} else {\n%s%s}\n",
					indent, g.cond(vars),
					g.stmts(indent+"\t", depth-1, vars), indent,
					g.stmts(indent+"\t", depth-1, vars), indent)
			}
		case 3:
			if depth > 0 && g.loops < 4 {
				g.loops++
				iv := fmt.Sprintf("i%d", g.rng.Int31n(1000))
				fmt.Fprintf(&sb, "%sfor (var %s = 0; %s < %d; %s = %s + 1) {\n%s%s}\n",
					indent, iv, iv, 2+g.rng.Intn(4), iv, iv,
					g.stmts(indent+"\t", depth-1, append(vars, iv)), indent)
			}
		case 4:
			if depth > 0 {
				fmt.Fprintf(&sb, "%sswitch (%s %% 3) {\n%scase 0:\n%s%scase 1:\n%s%sdefault:\n%s%s}\n",
					indent, g.expr(1, vars),
					indent, g.stmts(indent+"\t", 0, vars),
					indent, g.stmts(indent+"\t", 0, vars),
					indent, g.stmts(indent+"\t", 0, vars), indent)
			}
		default:
			if av := assignable(vars); len(av) > 0 {
				fmt.Fprintf(&sb, "%s%s = %s + g0;\n", indent, av[g.rng.Intn(len(av))], g.expr(1, vars))
			}
		}
	}
	return sb.String()
}

// generate returns a full random program whose main(a, b) returns an
// input-dependent value and touches a global.
func generateProgram(seed int64) string {
	g := &progGen{rng: rand.New(rand.NewSource(seed))}
	g.sb.WriteString("global g0;\nglobal tab[8] = 1, 2, 3, 4, 5, 6, 7, 8;\n")
	nf := 2 + g.rng.Intn(4)
	for i := 0; i < nf; i++ {
		name := fmt.Sprintf("f%d", i)
		// Function bodies never call other functions (g.fns stays empty
		// while they are generated): call graphs stay one level deep so
		// random loop nests cannot multiply into runaway step counts.
		fmt.Fprintf(&g.sb, "func %s(x, y) {\n\tvar r = x;\n%s\tg0 = g0 + r %% 13;\n\treturn r + tab[y %% 8];\n}\n",
			name, g.stmts("\t", 2, []string{"x", "y", "r"}))
	}
	for i := 0; i < nf; i++ {
		g.fns = append(g.fns, fmt.Sprintf("f%d", i))
	}
	fmt.Fprintf(&g.sb, "func main(a, b) {\n\tvar s = 0;\n%s\treturn s + g0 + %s;\n}\n",
		g.stmts("\t", 3, []string{"a", "b", "s"}),
		g.expr(2, []string{"a", "b", "s"}))
	return g.sb.String()
}

func runConfig(t *testing.T, src string, build func(p *ir.Program) error, inputs [][]int64) []int64 {
	t.Helper()
	f, err := source.Parse("fuzz.ml", src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	p, err := irgen.Lower(f)
	if err != nil {
		t.Fatalf("lower: %v\n%s", err, src)
	}
	if build != nil {
		if err := build(p); err != nil {
			t.Fatalf("build: %v\n%s", err, src)
		}
	}
	bin, err := codegen.Lower(p, codegen.Options{})
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	m := sim.New(bin, sim.DefaultCostParams(), sim.PMUConfig{})
	m.MaxSteps = 100_000_000
	var outs []int64
	for _, in := range inputs {
		m.Reset()
		v, err := m.Run(in...)
		if err != nil {
			t.Fatalf("run%v: %v", in, err)
		}
		outs = append(outs, v)
	}
	return outs
}

func TestRandomProgramsSemanticPreservation(t *testing.T) {
	seeds := []int64{1, 7, 42, 99, 1234, 5150, 90210, 31337, 2, 3, 11, 123, 777, 4242, 88888, 101010}
	if testing.Short() {
		seeds = seeds[:3]
	}
	inputs := [][]int64{{0, 0}, {1, 3}, {17, 5}, {100, 42}, {-7, 9}, {999, 1}}

	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src := generateProgram(seed)
			ref := runConfig(t, src, nil, inputs)

			check := func(name string, build func(p *ir.Program) error) {
				got := runConfig(t, src, build, inputs)
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("%s: input %v => %d, want %d\nprogram:\n%s",
							name, inputs[i], got[i], ref[i], src)
					}
				}
			}

			check("training-none", func(p *ir.Program) error {
				_, err := Optimize(p, TrainingConfig())
				return err
			})
			check("training-weak-probes", func(p *ir.Program) error {
				probe.InsertProgram(p)
				cfg := TrainingConfig()
				cfg.Barrier = BarrierWeak
				_, err := Optimize(p, cfg)
				return err
			})
			check("training-strong-probes", func(p *ir.Program) error {
				probe.InsertProgram(p)
				cfg := TrainingConfig()
				cfg.Barrier = BarrierStrong
				_, err := Optimize(p, cfg)
				return err
			})
			check("full-csspgo-pipeline", func(p *ir.Program) error {
				// Train a probed sibling, profile it, then optimize p with
				// the CS profile at full throttle. VerifyEach turns the
				// analysis suite into a per-pass fuzz oracle.
				train := runTrainingBuild(t, src)
				probe.InsertProgram(p)
				cfg := &Config{
					Profile: train, Barrier: BarrierWeak, Inference: true,
					Inline: DefaultInlineParams(), UnrollFactor: 4,
					EnableTCE: true, Layout: true, Split: true,
					CSHotContextThreshold: 2,
					VerifyEach:            true,
				}
				if _, err := Optimize(p, cfg); err != nil {
					return err
				}
				// End-state oracle: any fuzzed program that passes ir.Verify
				// must leave the pipeline flow-conserved, since inference ran
				// after the last CFG-perturbing pass.
				if e := analysis.FirstError(analysis.CheckProgram(p, analysis.DefaultOptions())); e != nil {
					return fmt.Errorf("analysis oracle: %s", e)
				}
				return nil
			})
		})
	}
}

// runTrainingBuild builds+profiles a probed training binary of src and
// returns its CS profile.
func runTrainingBuild(t *testing.T, src string) *profdata.Profile {
	t.Helper()
	f, err := source.Parse("fuzz.ml", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := irgen.Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	probe.InsertProgram(p)
	if _, err := Optimize(p, TrainingConfig()); err != nil {
		t.Fatal(err)
	}
	bin, err := codegen.Lower(p, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(bin, sim.DefaultCostParams(), sim.DefaultPMUConfig(16))
	m.MaxSteps = 100_000_000
	for i := int64(0); i < 12; i++ {
		if _, err := m.Run(i*13, i); err != nil {
			t.Fatal(err)
		}
	}
	prof, _ := sampling.GenerateCSSPGO(bin, m.Samples(), sampling.DefaultCSSPGOOptions())
	return prof
}
