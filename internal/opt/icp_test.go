package opt

import (
	"testing"

	"csspgo/internal/codegen"
	"csspgo/internal/ir"
	"csspgo/internal/machine"
	"csspgo/internal/probe"
	"csspgo/internal/profdata"
	"csspgo/internal/sampling"
	"csspgo/internal/sim"
)

func generateProbeProfileForTest(t testing.TB, bin *machine.Prog, m *sim.Machine) *profdata.Profile {
	t.Helper()
	return sampling.GenerateProbeProfile(bin, m.Samples())
}

// dispatchSrc calls through a function table with a heavily skewed target
// distribution: handler0 dominates.
const dispatchSrc = `
global table[4];
global inited;
func setup() {
	table[0] = 0;
	return 0;
}
func main(n) {
	var h0 = &handler0;
	var h1 = &handler1;
	var h2 = &handler2;
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		var h = h0;
		if (i % 16 == 7) { h = h1; }
		if (i % 64 == 9) { h = h2; }
		s = s + icall(h, i);
	}
	return s;
}
func handler0(x) { return x * 2 + 1; }
func handler1(x) { return x - 5; }
func handler2(x) { return x * x % 97; }
`

func buildDispatch(t testing.TB, withProbes bool) *ir.Program {
	t.Helper()
	p := lower(t, dispatchSrc, withProbes)
	return p
}

func runBin(t testing.TB, p *ir.Program, instrument bool, args ...int64) (*sim.Machine, int64) {
	t.Helper()
	bin, err := codegen.Lower(p, codegen.Options{Instrument: instrument})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(bin, sim.DefaultCostParams(), sim.PMUConfig{})
	v, err := m.Run(args...)
	if err != nil {
		t.Fatal(err)
	}
	return m, v
}

func expectedDispatch(n int64) int64 {
	var s int64
	for i := int64(0); i < n; i++ {
		switch {
		case i%64 == 9:
			s += i * i % 97
		case i%16 == 7:
			s += i - 5
		default:
			s += i*2 + 1
		}
	}
	return s
}

func TestIndirectCallExecution(t *testing.T) {
	p := buildDispatch(t, false)
	_, got := runBin(t, p, false, 200)
	if want := expectedDispatch(200); got != want {
		t.Fatalf("icall dispatch = %d, want %d", got, want)
	}
}

func TestIndirectCallWithProbesAndOptimizer(t *testing.T) {
	p := buildDispatch(t, true)
	cfg := TrainingConfig()
	cfg.Barrier = BarrierWeak
	if _, err := Optimize(p, cfg); err != nil {
		t.Fatal(err)
	}
	_, got := runBin(t, p, false, 200)
	if want := expectedDispatch(200); got != want {
		t.Fatalf("optimized icall dispatch = %d, want %d", got, want)
	}
	// The handlers' addresses are taken: dead-function elimination must
	// keep them all.
	for _, fn := range []string{"handler0", "handler1", "handler2"} {
		if p.Funcs[fn] == nil {
			t.Fatalf("%s dropped despite address-taken", fn)
		}
	}
}

func TestValueProfileCollection(t *testing.T) {
	p := buildDispatch(t, true)
	bin, err := codegen.Lower(p, codegen.Options{Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(bin, sim.DefaultCostParams(), sim.PMUConfig{})
	if _, err := m.Run(256); err != nil {
		t.Fatal(err)
	}
	vp := m.ValueProfile()
	if len(vp) == 0 {
		t.Fatal("instrumented run collected no value profile")
	}
	var total, dominant uint64
	for _, targets := range vp {
		for id, n := range targets {
			total += n
			if bin.Funcs[id].Name == "handler0" {
				dominant += n
			}
		}
	}
	if total != 256 {
		t.Fatalf("value profile total = %d, want 256", total)
	}
	if dominant*100/total < 70 {
		t.Fatalf("handler0 share = %d/%d, expected dominance", dominant, total)
	}
}

func TestICPPromotesDominantTarget(t *testing.T) {
	p := buildDispatch(t, true)
	f := p.Funcs["main"]
	// Annotate manually: the icall site's block is hot and dominated by
	// handler0.
	prof := profdata.New(profdata.ProbeBased, false)
	fp := prof.FuncProfile("main")
	var icallProbeID int32
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpICall {
				icallProbeID = b.Instrs[i].Probe.ID
				b.Weight, b.HasWeight = 1000, true
			}
		}
	}
	if icallProbeID == 0 {
		t.Fatal("icall probe missing")
	}
	loc := profdata.LocKey{ID: icallProbeID}
	fp.AddCall(loc, "handler0", 900)
	fp.AddCall(loc, "handler1", 80)
	fp.AddCall(loc, "handler2", 20)
	f.HasProfile = true

	n := ICP(p, f, prof, DefaultICPParams())
	if n != 1 {
		t.Fatalf("promotions = %d, want 1", n)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("post-ICP verify: %v\n%s", err, f)
	}
	// A guarded direct call to handler0 must now exist.
	foundDirect, foundIndirect := false, false
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			switch b.Instrs[i].Op {
			case ir.OpCall:
				if b.Instrs[i].Callee == "handler0" {
					foundDirect = true
					if b.Instrs[i].Probe == nil || b.Instrs[i].Probe.ID != icallProbeID {
						t.Fatal("promoted call lost its call probe identity")
					}
				}
			case ir.OpICall:
				foundIndirect = true
			}
		}
	}
	if !foundDirect || !foundIndirect {
		t.Fatalf("direct=%v indirect=%v after promotion", foundDirect, foundIndirect)
	}
	// Weight split ~90/10.
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpCall && b.Instrs[i].Callee == "handler0" {
				if b.Weight != 900 {
					t.Fatalf("direct block weight = %d, want 900", b.Weight)
				}
			}
		}
	}
	// Semantics preserved.
	_, got := runBin(t, p, false, 200)
	if want := expectedDispatch(200); got != want {
		t.Fatalf("post-ICP output = %d, want %d", got, want)
	}
}

func TestICPRefusesWeakDominance(t *testing.T) {
	p := buildDispatch(t, true)
	f := p.Funcs["main"]
	prof := profdata.New(profdata.ProbeBased, false)
	fp := prof.FuncProfile("main")
	var icallProbeID int32
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpICall {
				icallProbeID = b.Instrs[i].Probe.ID
			}
		}
	}
	loc := profdata.LocKey{ID: icallProbeID}
	fp.AddCall(loc, "handler0", 40)
	fp.AddCall(loc, "handler1", 35)
	fp.AddCall(loc, "handler2", 25)
	f.HasProfile = true
	if n := ICP(p, f, prof, DefaultICPParams()); n != 0 {
		t.Fatalf("weakly dominated site promoted (%d)", n)
	}
}

func TestICPPromotedCallIsInlinable(t *testing.T) {
	// End-to-end through the optimizer: profile-guided ICP followed by the
	// inliner should leave the hot path with neither icall nor call.
	p := buildDispatch(t, true)
	probeP := probe.BuildIndex(p.Funcs["main"])
	_ = probeP
	// Build a real profile via simulation.
	train := buildDispatch(t, true)
	if _, err := Optimize(train, TrainingConfig()); err != nil {
		t.Fatal(err)
	}
	bin, err := codegen.Lower(train, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(bin, sim.DefaultCostParams(), sim.DefaultPMUConfig(16))
	for r := 0; r < 30; r++ {
		if _, err := m.Run(400); err != nil {
			t.Fatal(err)
		}
	}
	prof := generateProbeProfileForTest(t, bin, m)
	cfg := &Config{
		Profile: prof, Barrier: BarrierWeak, Inference: true,
		Inline: DefaultInlineParams(), EnableTCE: true, Layout: true, Split: true,
	}
	st, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.ICPromotions == 0 {
		t.Fatalf("pipeline performed no ICP: %+v", st)
	}
	_, got := runBin(t, p, false, 200)
	if want := expectedDispatch(200); got != want {
		t.Fatalf("pipeline+ICP output = %d, want %d", got, want)
	}
}
