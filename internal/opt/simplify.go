package opt

import "csspgo/internal/ir"

// SimplifyResult reports what SimplifyCFG did.
type SimplifyResult struct {
	Merged           int // straight-line chains collapsed
	EmptyRemoved     int
	TailMerges       int
	TailMergeBlocked int // merges prevented by probe/counter barriers
}

// SimplifyCFG collapses straight-line chains, removes trivially empty
// blocks and — when enabled — merges identical block tails (the code-merge
// optimization the paper names as a profile-quality hazard). barrier
// controls whether probes block tail merging: with BarrierWeak or
// BarrierStrong, blocks whose tails differ only by probe identity do not
// merge (the probes' distinct signatures preserve original control flow).
// simplifyPass merges chains and removes empty blocks, folding weights in
// ways that do not keep edge flows conserved.
var simplifyPass = registerPass("simplify-cfg", flowPerturbs, semRestructures)

func SimplifyCFG(f *ir.Function, tailMerge bool, barrier BarrierStrength) SimplifyResult {
	var res SimplifyResult
	for {
		changed := false
		f.RebuildCFG()

		// 1. Merge A → B where A jumps to B and B has exactly one pred.
		for _, a := range f.Blocks {
			for a.Term.Kind == ir.TermJump {
				b := a.Term.Succs[0]
				if b == a || len(b.Preds) != 1 || b == f.Entry() {
					break
				}
				a.Instrs = append(a.Instrs, b.Instrs...)
				a.Term = b.Term
				// Weight: the chain executes as one; keep A's weight.
				b.Term = ir.Terminator{Kind: ir.TermReturn, Val: ir.NoReg}
				b.Instrs = nil
				removeBlock(f, b)
				f.RebuildCFG()
				res.Merged++
				changed = true
			}
		}

		// 2. Remove empty forwarding blocks (nothing but a jump).
		for _, b := range f.Blocks {
			if b == f.Entry() || b.Term.Kind != ir.TermJump || len(b.Instrs) != 0 {
				continue
			}
			tgt := b.Term.Succs[0]
			if tgt == b {
				continue
			}
			for _, p := range b.Preds {
				p.ReplaceSucc(b, tgt)
			}
			removeBlock(f, b)
			f.RebuildCFG()
			res.EmptyRemoved++
			changed = true
		}

		// 3. Tail merging.
		if tailMerge {
			tm, blocked := tailMergePass(f, barrier)
			res.TailMerges += tm
			res.TailMergeBlocked += blocked
			if tm > 0 {
				changed = true
			}
		}

		if !changed {
			break
		}
	}
	f.RemoveUnreachable()
	return res
}

func removeBlock(f *ir.Function, b *ir.Block) {
	for i, bb := range f.Blocks {
		if bb == b {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			return
		}
	}
}

// instrsSemanticallyEqual compares instructions ignoring debug locations —
// exactly the equivalence a binary-level tail merger sees. Probe payloads
// DO participate: two probes with different IDs are different instructions,
// which is how pseudo-instrumentation blocks the merge.
func instrsSemanticallyEqual(a, b *ir.Instr) bool {
	if a.Op != b.Op || a.Dst != b.Dst || a.A != b.A || a.B != b.B || a.C != b.C {
		return false
	}
	if a.BinKind != b.BinKind || a.Value != b.Value || a.Callee != b.Callee ||
		a.Global != b.Global || a.Index != b.Index || a.TailCall != b.TailCall {
		return false
	}
	pa, pb := a.Probe, b.Probe
	if (pa == nil) != (pb == nil) {
		return false
	}
	if pa != nil && (pa.Func != pb.Func || pa.ID != pb.ID || pa.Kind != pb.Kind) {
		return false
	}
	return true
}

// probeInsensitiveEqual compares ignoring probes entirely (what a merger
// sees when no probes exist, or when it is allowed to discard them).
func probeInsensitiveEqual(a, b *ir.Instr) bool {
	ca, cb := *a, *b
	ca.Probe, cb.Probe = nil, nil
	ca.Loc, cb.Loc = nil, nil
	return instrsSemanticallyEqual(&ca, &cb)
}

// tailMergePass merges identical instruction suffixes of sibling blocks
// that jump to the same successor. With a probe barrier active, suffixes
// containing probes never match across blocks (IDs differ), so the merge is
// blocked — counted separately so experiments can report it.
func tailMergePass(f *ir.Function, barrier BarrierStrength) (merges, blocked int) {
	f.RebuildCFG()
	// Group candidate blocks by their unique jump target.
	groups := map[*ir.Block][]*ir.Block{}
	for _, b := range f.Blocks {
		if b.Term.Kind == ir.TermJump && len(b.Instrs) > 0 {
			t := b.Term.Succs[0]
			groups[t] = append(groups[t], b)
		}
	}
	for target, siblings := range groups {
		if len(siblings) < 2 {
			continue
		}
		// Pairwise merge of the first matching pair (iteration restarts).
		for i := 0; i < len(siblings); i++ {
			for j := i + 1; j < len(siblings); j++ {
				a, b := siblings[i], siblings[j]
				n := commonSuffix(a, b, instrsSemanticallyEqual)
				// Probes at block heads carry distinct IDs, so the
				// semantic common suffix always stops short of a full
				// block merge; count how often probes limited the merge.
				if barrier != BarrierNone && commonSuffix(a, b, probeInsensitiveEqual) > n {
					blocked++
				}
				if n == 0 {
					continue
				}
				// Move the shared suffix into a new block M.
				m := f.NewBlock()
				m.Instrs = append(m.Instrs, a.Instrs[len(a.Instrs)-n:]...)
				m.Term = ir.Terminator{Kind: ir.TermJump, Succs: []*ir.Block{target}}
				m.Weight = a.Weight + b.Weight
				m.HasWeight = a.HasWeight || b.HasWeight
				a.Instrs = a.Instrs[:len(a.Instrs)-n]
				b.Instrs = b.Instrs[:len(b.Instrs)-n]
				a.Term.Succs[0] = m
				b.Term.Succs[0] = m
				f.RebuildCFG()
				return 1, blocked
			}
		}
	}
	return 0, blocked
}

// commonSuffix counts the longest common instruction suffix under eq.
func commonSuffix(a, b *ir.Block, eq func(x, y *ir.Instr) bool) int {
	n := 0
	for n < len(a.Instrs) && n < len(b.Instrs) {
		x := &a.Instrs[len(a.Instrs)-1-n]
		y := &b.Instrs[len(b.Instrs)-1-n]
		if !eq(x, y) {
			break
		}
		n++
	}
	return n
}
