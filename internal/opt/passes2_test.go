package opt

import (
	"testing"

	"csspgo/internal/ir"
)

// Additional pass edge cases and determinism checks.

func TestInlineRefusesDirectRecursion(t *testing.T) {
	p := lower(t, `
func main(n) { return fact(n % 10); }
func fact(n) {
	if (n <= 1) { return 1; }
	return n * fact(n - 1);
}`, false)
	f := p.Funcs["fact"]
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpCall && b.Instrs[i].Callee == "fact" {
				if err := InlineCall(p, f, b, i, nil); err == nil {
					t.Fatal("direct recursion must not inline")
				}
				return
			}
		}
	}
	t.Fatal("recursive call not found")
}

func TestBottomUpInlineRespectsGrowthCap(t *testing.T) {
	// A caller with many callable sites stops growing at the cap.
	src := "func main(a) {\n\tvar s = 0;\n"
	for i := 0; i < 40; i++ {
		src += "\ts = s + work(a);\n"
	}
	src += "\treturn s;\n}\nfunc work(x) { var r = x * 3 + 1; r = r % 97; r = r + x; return r; }\n"
	p := lower(t, src, false)
	before := realSize(p.Funcs["main"])
	params := DefaultInlineParams()
	params.GrowthCap = before + 30 // room for ~2 inlines of `work`
	params.TinyThreshold = 0
	BottomUpInline(p, params, false)
	after := realSize(p.Funcs["main"])
	if after > params.GrowthCap+20 {
		t.Fatalf("growth cap exceeded: %d -> %d (cap %d)", before, after, params.GrowthCap)
	}
	// Most call sites must remain.
	calls := 0
	for _, b := range p.Funcs["main"].Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpCall {
				calls++
			}
		}
	}
	if calls < 30 {
		t.Fatalf("cap should have left most call sites uninlined, %d remain", calls)
	}
}

func TestUnrollRefusesLoopsWithCalls(t *testing.T) {
	p := lower(t, `
func main(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) { s = s + leaf(i); }
	return s;
}
func leaf(x) { return x + 1; }`, false)
	f := p.Funcs["main"]
	if n := Unroll(f, UnrollParams{Factor: 4, MaxBodyInstrs: 50}); n != 0 {
		t.Fatalf("loop with call unrolled (%d)", n)
	}
}

func TestUnrollRefusesOversizedBody(t *testing.T) {
	src := `func main(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		s = s + i * 3; s = s - i / 2; s = s + i % 5;
		s = s * 2; s = s - 7; s = s + i;
	}
	return s;
}`
	p := lower(t, src, false)
	f := p.Funcs["main"]
	if n := Unroll(f, UnrollParams{Factor: 4, MaxBodyInstrs: 4}); n != 0 {
		t.Fatalf("oversized body unrolled (%d)", n)
	}
}

func TestLayoutDeterministic(t *testing.T) {
	mk := func() *ir.Function {
		p := lower(t, `
func main(a) {
	var r = 0;
	if (a % 2 == 0) { r = 1; } else { r = 2; }
	if (a % 3 == 0) { r = r + 10; }
	switch (a % 4) {
	case 0: r = r * 2;
	case 1: r = r * 3;
	default: r = r * 5;
	}
	return r;
}`, false)
		f := p.Funcs["main"]
		f.RebuildCFG()
		for i, b := range f.Blocks {
			b.Weight = uint64(100 - i*3)
			b.HasWeight = true
			b.Term.EnsureEdgeWeights()
			for j := range b.Term.EdgeW {
				b.Term.EdgeW[j] = b.Weight / uint64(len(b.Term.EdgeW))
			}
		}
		return f
	}
	a, b := mk(), mk()
	Layout(a)
	Layout(b)
	if len(a.Blocks) != len(b.Blocks) {
		t.Fatal("layout changed block count")
	}
	for i := range a.Blocks {
		if a.Blocks[i].ID != b.Blocks[i].ID {
			t.Fatalf("layout nondeterministic at %d: %d vs %d", i, a.Blocks[i].ID, b.Blocks[i].ID)
		}
	}
}

func TestLayoutKeepsEntryFirst(t *testing.T) {
	p := lower(t, diamondSrc, false)
	f := p.Funcs["main"]
	entry := f.Entry()
	for _, b := range f.Blocks {
		b.Weight, b.HasWeight = 50, true
		b.Term.EnsureEdgeWeights()
	}
	// Make a non-entry block the hottest.
	f.Blocks[2].Weight = 1000
	Layout(f)
	if f.Blocks[0] != entry {
		t.Fatal("entry must stay first regardless of heat")
	}
}

func TestTCEIgnoresICalls(t *testing.T) {
	p := lower(t, `
func main(a) {
	var h = &leaf;
	return icall(h, a);
}
func leaf(x) { return x + 1; }`, false)
	if n := TCE(p.Funcs["main"]); n != 0 {
		t.Fatalf("icall must not be TCE-marked (%d)", n)
	}
}

func TestDCEPreservesICalls(t *testing.T) {
	p := lower(t, `
global g;
func main(a) {
	var h = &effectful;
	var dead = icall(h, a);
	return g;
}
func effectful(x) { g = g + x; return 0; }`, false)
	f := p.Funcs["main"]
	DCE(f)
	found := false
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpICall {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("DCE removed an indirect call with side effects")
	}
}

func TestSimplifyRemovesEmptyForwarders(t *testing.T) {
	p := lower(t, diamondSrc, false)
	f := p.Funcs["main"]
	// Interpose an empty forwarding block on one edge.
	f.RebuildCFG()
	entry := f.Entry()
	target := entry.Term.Succs[0]
	fwd := f.NewBlock()
	fwd.Term = ir.Terminator{Kind: ir.TermJump, Succs: []*ir.Block{target}}
	entry.Term.Succs[0] = fwd
	f.RebuildCFG()
	before := len(f.Blocks)
	res := SimplifyCFG(f, false, BarrierNone)
	// The forwarder disappears either via empty-block removal or by being
	// merged with its single-predecessor target.
	if res.EmptyRemoved == 0 && res.Merged == 0 {
		t.Fatalf("forwarder not removed: %+v\n%s", res, f)
	}
	if len(f.Blocks) >= before {
		t.Fatalf("block count did not shrink: %d -> %d", before, len(f.Blocks))
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDropDeadFunctionsKeepsAddressTaken(t *testing.T) {
	p := lower(t, `
func main(a) {
	var h = &used;
	return icall(h, a);
}
func used(x) { return x; }
func unused(x) { return x * 2; }`, true)
	dropped := DropDeadFunctions(p)
	if dropped != 1 {
		t.Fatalf("dropped %d, want 1 (only `unused`)", dropped)
	}
	if p.Funcs["used"] == nil {
		t.Fatal("address-taken function dropped")
	}
	if p.Funcs["unused"] != nil {
		t.Fatal("dead function survived")
	}
	// Its checksum must persist for profile verification.
	if p.DroppedChecksums["unused"] == 0 {
		t.Fatal("dropped function's checksum lost")
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	run := func() string {
		p := lower(t, semanticPrograms[0].src, true)
		cfg := TrainingConfig()
		cfg.Barrier = BarrierWeak
		if _, err := Optimize(p, cfg); err != nil {
			t.Fatal(err)
		}
		return p.String()
	}
	if run() != run() {
		t.Fatal("optimizer output nondeterministic")
	}
}
