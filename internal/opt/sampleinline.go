package opt

import (
	"csspgo/internal/ir"
	"csspgo/internal/profdata"
	"csspgo/internal/stale"
)

// SampleInlineCS is the CSSPGO top-down sample-loader inliner. Functions
// are visited callers-first. While compiling F, the profile's contexts
// rooted at F ("F:site @ callee …") drive inlining: a retained context
// (pre-inliner ShouldInline decision, or hot context when compiling without
// the pre-inliner) is inlined and its body annotated directly from the
// context profile. After F is finished, leftover contexts rooted at F are
// *promoted*: their leading frame is dropped, so "F:2 @ g" merges into g's
// base profile (re-annotating g) and "F:2 @ g:5 @ h" becomes "g:5 @ h",
// available when g is compiled — LLVM's context promotion, and the
// compile-time half of Algorithm 2's profile bookkeeping.
//
// Returns the number of call sites inlined; stale-context rejections are
// counted into st (which may be nil). A non-nil matcher lets stale contexts
// degrade via anchor matching instead of merging straight into the base.
// sampleInlinePass rewrites caller CFGs from context profiles.
var sampleInlinePass = registerPass("sample-inline", flowPerturbs, semRestructures)

func SampleInlineCS(p *ir.Program, prof *profdata.Profile, m *stale.Matcher, st *Stats) int {
	if !prof.CS || len(prof.Contexts) == 0 {
		return 0
	}
	cg := ir.BuildCallGraph(p)
	inlines := 0

	for _, name := range cg.TopDownOrder() {
		f := p.Funcs[name]
		if f != nil && f.HasProfile {
			// Fixed point: inlining exposes deeper call sites whose probes
			// carry extended inline chains, matching deeper contexts.
			for pass := 0; pass < 8; pass++ {
				changed := false
				for _, b := range f.Blocks {
					for i := 0; i < len(b.Instrs); i++ {
						in := &b.Instrs[i]
						if in.Op != ir.OpCall || in.Probe == nil || in.TailCall {
							continue
						}
						callee := p.Funcs[in.Callee]
						if callee == nil || callee == f || cg.InSameSCC(f.Name, in.Callee) {
							continue
						}
						key := contextKeyForCall(in, in.Callee)
						cp := prof.Contexts[key]
						if cp == nil {
							continue
						}
						// Stale defense: a context profile whose CFG
						// checksum no longer matches the callee must not
						// annotate an inlined body (source drift changed
						// the callee's shape). The anchor matcher may remap
						// it into the callee's new ID space; otherwise it
						// falls through to the base-merge sweep, where
						// annotation re-checks.
						if cp.Checksum != 0 && callee.Checksum != 0 && cp.Checksum != callee.Checksum {
							var remapped *profdata.FunctionProfile
							if m != nil {
								if res := m.Match(callee, cp); res.OK {
									remapped = res.Profile
								}
							}
							if remapped == nil {
								if st != nil {
									st.StaleFuncs++
								}
								prof.MergeContextIntoBase(key)
								continue
							}
							if st != nil {
								st.MatchedContexts++
							}
							cp = remapped
						}
						if err := InlineCall(p, f, b, i, cp); err != nil {
							continue
						}
						delete(prof.Contexts, key)
						inlines++
						changed = true
						break
					}
					if changed {
						break
					}
				}
				if !changed {
					break
				}
			}
		}
		promoteContextsRootedAt(p, prof, name, m)
	}

	// Safety net: any context that survived both consumption and promotion
	// (vanished call sites, cross-SCC chains, roots outside the static call
	// graph) folds into its leaf's base profile so no samples are lost.
	reannotate := map[string]bool{}
	for _, key := range prof.SortedContextKeys() {
		cp := prof.Contexts[key]
		reannotate[cp.Name] = true
		prof.MergeContextIntoBase(key)
	}
	for name := range reannotate {
		f, fp := p.Funcs[name], prof.Funcs[name]
		if f == nil || fp == nil {
			continue
		}
		if fp.Checksum != 0 && f.Checksum != 0 && fp.Checksum != f.Checksum {
			// The merged base is stale: walk the ladder rather than leaving
			// whatever annotation the function had. Function-level match
			// counters stay with Annotate — this sweep revisits functions it
			// already classified.
			var ast AnnotateStats
			if !degradeStale(f, fp, m, &ast) && st != nil {
				st.StaleFuncs++
			}
			continue
		}
		annotateProbe(f, fp)
		f.EntryCount = fp.HeadSamples
		f.HasProfile = true
	}
	return inlines
}

// promoteContextsRootedAt drops the leading frame from every remaining
// context rooted at fname: the call was not inlined, so the callee runs
// standalone and its context counts belong one level down. Depth-1 results
// merge into base profiles, whose functions are immediately re-annotated.
func promoteContextsRootedAt(p *ir.Program, prof *profdata.Profile, fname string, m *stale.Matcher) {
	reannotate := map[string]bool{}
	for _, key := range prof.SortedContextKeys() {
		cp, ok := prof.Contexts[key]
		if !ok || len(cp.Context) < 2 || cp.Context[0].Func != fname {
			continue
		}
		newCtx := append(profdata.Context(nil), cp.Context[1:]...)
		delete(prof.Contexts, key)
		if newCtx.Depth() == 1 {
			base := prof.FuncProfile(cp.Name)
			if base.Checksum == 0 {
				base.Checksum = cp.Checksum
			}
			base.Merge(cp)
			reannotate[cp.Name] = true
			continue
		}
		dst := prof.ContextProfile(newCtx)
		dst.ShouldInline = dst.ShouldInline || cp.ShouldInline
		dst.Merge(cp)
	}
	for name := range reannotate {
		f := p.Funcs[name]
		fp := prof.Funcs[name]
		if f == nil || fp == nil {
			continue
		}
		if fp.Checksum != 0 && f.Checksum != 0 && fp.Checksum != f.Checksum {
			var ast AnnotateStats
			degradeStale(f, fp, m, &ast)
			continue
		}
		annotateProbe(f, fp)
		f.EntryCount = fp.HeadSamples
		f.HasProfile = true
	}
}

// contextKeyForCall renders the profile context key of a call instruction
// rooted at the enclosing physical function: the call probe's inline chain
// (outermost first), the probe's own site, and the callee as leaf.
func contextKeyForCall(call *ir.Instr, callee string) string {
	var chain []profdata.ContextFrame
	for s := call.Probe.InlinedAt; s != nil; s = s.Parent {
		chain = append(chain, profdata.ContextFrame{Func: s.Func, Site: profdata.LocKey{ID: s.CallID}})
	}
	ctx := make(profdata.Context, 0, len(chain)+2)
	for i := len(chain) - 1; i >= 0; i-- {
		ctx = append(ctx, chain[i])
	}
	ctx = append(ctx, profdata.ContextFrame{Func: call.Probe.Func, Site: profdata.LocKey{ID: call.Probe.ID}})
	ctx = append(ctx, profdata.ContextFrame{Func: callee})
	return ctx.Key()
}

// SampleInlineAutoFDO is AutoFDO's early top-down inliner: with only
// context-insensitive line profiles available, it inlines call sites whose
// block weight is hot relative to the caller, conservatively (the paper
// notes early inlining on unoptimized IR must be conservative because cost
// estimates are poor). The inlined body is annotated by scaling the
// callee's base profile — the context-insensitive approximation.
func SampleInlineAutoFDO(p *ir.Program, params InlineParams) int {
	cg := ir.BuildCallGraph(p)
	inlines := 0
	for _, name := range cg.TopDownOrder() {
		f := p.Funcs[name]
		if f == nil || !f.HasProfile || f.EntryCount == 0 {
			continue
		}
		for pass := 0; pass < 4; pass++ {
			changed := false
			for _, b := range f.Blocks {
				if !b.HasWeight || b.Weight == 0 {
					continue
				}
				hot := b.Weight*1000 >= f.EntryCount*uint64(params.HotCallsiteFraction)
				if !hot {
					continue
				}
				for i := 0; i < len(b.Instrs); i++ {
					in := &b.Instrs[i]
					if in.Op != ir.OpCall || in.TailCall {
						continue
					}
					callee := p.Funcs[in.Callee]
					if callee == nil || callee == f || cg.InSameSCC(f.Name, in.Callee) {
						continue
					}
					if !callee.HasProfile || callee.EntryCount == 0 {
						continue
					}
					// Conservative: early IR cost estimate, modest cap.
					size := realSize(callee)
					if size > params.SizeThreshold {
						continue
					}
					// ThinLTO: cross-module bodies only via summary import
					// (judged on the pre-optimization summary size).
					if callee.Module != f.Module && summarySize(callee) > params.ImportThreshold {
						continue
					}
					if err := InlineCall(p, f, b, i, nil); err != nil {
						continue
					}
					inlines++
					changed = true
					break
				}
				if changed {
					break
				}
			}
			if !changed {
				break
			}
		}
	}
	return inlines
}
