package opt

import (
	"testing"

	"csspgo/internal/ir"
	"csspgo/internal/irgen"
	"csspgo/internal/probe"
	"csspgo/internal/profdata"
	"csspgo/internal/source"
	"csspgo/internal/stale"
)

// ladderOldSrc is the profiled version. work drifts recoverably in the new
// version; mix is rewritten beyond recognition; the leaves stay exact.
const ladderOldSrc = `
func work(n) {
  var s = 0;
  var i = 0;
  while (i < n) {
    if (i % 2 == 0) {
      s = s + step(i);
    } else {
      s = s + other(i);
    }
    i = i + 1;
  }
  return s;
}
func mix(n) {
  var t = alpha(n);
  t = t + beta(n);
  return t;
}
func step(x) { return x * 2; }
func other(x) { return x + 1; }
func alpha(x) { return x - 1; }
func beta(x) { return x + 3; }
func main(a, b) { return work(a) + mix(b); }
`

const ladderNewSrc = `
func work(n) {
  var s = 0;
  var i = 0;
  if (n > 1000000) {
    return 0;
  }
  while (i < n) {
    if (i % 2 == 0) {
      s = s + step(i);
    } else {
      s = s + other(i);
    }
    i = i + 1;
  }
  return s;
}
func mix(n) {
  var t = 0;
  var i = 0;
  while (i < 3) {
    if (n % 2 == 0) {
      t = t + gamma(i);
    } else {
      t = t + delta(i);
    }
    if (t > 100) {
      t = t - epsilon(i);
    }
    i = i + 1;
  }
  return t;
}
func step(x) { return x * 2; }
func other(x) { return x + 1; }
func gamma(x) { return x - 1; }
func delta(x) { return x + 3; }
func epsilon(x) { return x; }
func main(a, b) { return work(a) + mix(b); }
`

func ladderProgram(t *testing.T, src string) *ir.Program {
	t.Helper()
	f, err := source.Parse("t.ml", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := irgen.Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	probe.InsertProgram(prog)
	return prog
}

// ladderProfile synthesizes the base profile the old version would yield.
func ladderProfile(t *testing.T, old *ir.Program) *profdata.Profile {
	t.Helper()
	p := profdata.New(profdata.ProbeBased, false)
	for _, f := range old.Functions() {
		fp := p.FuncProfile(f.Name)
		fp.Checksum = f.Checksum
		fp.HeadSamples = 50
		for _, a := range stale.AnchorsFromIR(f) {
			if a.Kind == stale.Block {
				fp.AddBody(profdata.LocKey{ID: a.ID}, 50)
			} else if a.Callee != "" {
				fp.AddCall(profdata.LocKey{ID: a.ID}, a.Callee, 50)
			}
		}
	}
	return p
}

// TestOptimizeDegradationLadder drives the full ladder through Optimize:
// exact functions annotate as before, work lands on the anchor-matched
// rung, the rewritten mix falls to the flat fallback, and with matching
// disabled every stale profile is dropped.
func TestOptimizeDegradationLadder(t *testing.T) {
	run := func(staleMatching bool) *Stats {
		prog := ladderProgram(t, ladderNewSrc)
		prof := ladderProfile(t, ladderProgram(t, ladderOldSrc))
		st, err := Optimize(prog, &Config{
			Profile:       prof,
			StaleMatching: staleMatching,
			Inline:        DefaultInlineParams(),
			EnableTCE:     true,
			Barrier:       BarrierWeak,
			UnrollFactor:  2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	on := run(true)
	if on.StaleFuncs != 2 {
		t.Fatalf("expected work and mix stale, got StaleFuncs=%d", on.StaleFuncs)
	}
	if on.MatchedFuncs != 1 {
		t.Errorf("expected exactly work anchor-matched, got %d", on.MatchedFuncs)
	}
	if on.FlatFallbackFuncs != 1 {
		t.Errorf("expected exactly mix on the flat fallback, got %d", on.FlatFallbackFuncs)
	}
	if on.MatchQuality <= 0.5 || on.MatchQuality > 1 {
		t.Errorf("match quality %.2f out of range", on.MatchQuality)
	}
	if on.RecoveredProbes == 0 {
		t.Error("no probes recovered")
	}

	off := run(false)
	if off.StaleFuncs != on.StaleFuncs {
		t.Errorf("staleness detection must not depend on matching: %d vs %d", off.StaleFuncs, on.StaleFuncs)
	}
	if off.MatchedFuncs != 0 || off.FlatFallbackFuncs != 0 || off.RecoveredProbes != 0 {
		t.Errorf("matching disabled but ladder used: %+v", off)
	}
}
