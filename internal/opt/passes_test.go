package opt

import (
	"testing"

	"csspgo/internal/ir"
	"csspgo/internal/irgen"
	"csspgo/internal/probe"
	"csspgo/internal/profdata"
	"csspgo/internal/source"
)

func lower(t testing.TB, src string, withProbes bool) *ir.Program {
	t.Helper()
	f, err := source.Parse("m", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := irgen.Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	if withProbes {
		probe.InsertProgram(p)
	}
	return p
}

func TestDCERemovesDeadCode(t *testing.T) {
	p := lower(t, `func main(a) { var dead = a * 2 + 7; return a; }`, false)
	f := p.Funcs["main"]
	before := realSize(f)
	removed := DCE(f)
	if removed == 0 {
		t.Fatal("dead computation not removed")
	}
	if realSize(f) >= before {
		t.Fatal("size did not shrink")
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDCEKeepsSideEffects(t *testing.T) {
	p := lower(t, `
global g;
func main(a) { g = a; noisy(a); return 0; }
func noisy(x) { g = g + x; return x; }`, false)
	f := p.Funcs["main"]
	DCE(f)
	stores, calls := 0, 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			switch b.Instrs[i].Op {
			case ir.OpStoreG:
				stores++
			case ir.OpCall:
				calls++
			}
		}
	}
	if stores == 0 || calls == 0 {
		t.Fatalf("side effects removed: stores=%d calls=%d", stores, calls)
	}
}

func TestSimplifyMergesChains(t *testing.T) {
	// The for-loop body jumps to its single-predecessor post block: a
	// straight-line chain SimplifyCFG must collapse.
	p := lower(t, `func main(n) { var s = 0; for (var i = 0; i < n; i = i + 1) { s = s + i; } return s; }`, false)
	f := p.Funcs["main"]
	n := len(f.Blocks)
	res := SimplifyCFG(f, false, BarrierNone)
	if res.Merged == 0 || len(f.Blocks) >= n {
		t.Fatalf("no blocks merged: %d -> %d (%+v)", n, len(f.Blocks), res)
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

// tailMergeSrc: both arms contain identical statements (same persistent
// registers, same temp registers — thanks to the per-statement temp pool),
// so without probes the arms can merge entirely; with probes, only the
// suffix below the distinct block probes can.
const tailMergeSrc = `
func main(a) {
	var x = 0;
	if (a > 0) {
		x = a * 2;
		x = x + 9;
		x = x * 3;
	} else {
		x = a * 2;
		x = x + 9;
		x = x * 3;
	}
	return x;
}`

func TestTailMergeWithoutProbes(t *testing.T) {
	p := lower(t, tailMergeSrc, false)
	f := p.Funcs["main"]
	res := SimplifyCFG(f, true, BarrierNone)
	if res.TailMerges == 0 {
		t.Fatalf("identical tails not merged:\n%s", f)
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestTailMergeKeepsProbesPerArm(t *testing.T) {
	// Probes sit at block heads with distinct IDs, so tail merging can
	// still extract the common suffix — but each arm must retain its own
	// block probe (which is why probe-based correlation survives the
	// merge), and the full-block collapse is reported as blocked.
	p := lower(t, tailMergeSrc, true)
	f := p.Funcs["main"]
	want := map[int32]bool{}
	for _, b := range f.Blocks {
		if pr := probe.BlockProbe(b); pr != nil {
			want[pr.ID] = true
		}
	}
	res := SimplifyCFG(f, true, BarrierWeak)
	if res.TailMergeBlocked == 0 {
		t.Fatalf("probe-limited merge not reported: %+v", res)
	}
	got := map[int32]bool{}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpProbe {
				got[b.Instrs[i].Probe.ID] = true
			}
		}
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("block probe %d lost during tail merge", id)
		}
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestLICMHoistsInvariant(t *testing.T) {
	p := lower(t, `
func main(n) {
	var s = 0;
	var i = 0;
	while (i < n) {
		var inv = 100 * 3;
		s = s + inv;
		i = i + 1;
	}
	return s;
}`, false)
	f := p.Funcs["main"]
	hoisted := LICM(f)
	if hoisted == 0 {
		t.Fatalf("nothing hoisted:\n%s", f)
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	// The loop body must no longer contain the hoisted constants.
	loops := f.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("loop destroyed: %d", len(loops))
	}
}

func TestLICMRefusesVariant(t *testing.T) {
	p := lower(t, `
func main(n) {
	var s = 0;
	var i = 0;
	while (i < n) {
		s = s + i;
		i = i + 1;
	}
	return s;
}`, false)
	f := p.Funcs["main"]
	// s and i change every iteration: the adds must stay. Constants used
	// by compares may hoist; the OpBin on loop-variant regs must not.
	LICM(f)
	loops := f.NaturalLoops()
	if len(loops) != 1 {
		t.Fatal("loop destroyed")
	}
	varAdds := 0
	for b := range loops[0].Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpBin && in.BinKind == ir.BinAdd {
				varAdds++
			}
		}
	}
	if varAdds < 2 {
		t.Fatalf("loop-variant adds were hoisted:\n%s", f)
	}
}

func TestUnrollDuplicatesProbesAndScalesWeights(t *testing.T) {
	p := lower(t, `func main(n) { var s = 0; var i = 0; while (i < n) { s = s + i; i = i + 1; } return s; }`, true)
	f := p.Funcs["main"]
	// Annotate weights as if profiled.
	for _, b := range f.Blocks {
		b.Weight = 1000
		b.HasWeight = true
	}
	blocksBefore := len(f.Blocks)
	n := Unroll(f, UnrollParams{Factor: 4, MaxBodyInstrs: 24})
	if n != 1 {
		t.Fatalf("loop not unrolled:\n%s", f)
	}
	if len(f.Blocks) != blocksBefore+6 { // 3 extra (header,body) pairs
		t.Fatalf("blocks: %d -> %d", blocksBefore, len(f.Blocks))
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	// Probe copies share IDs: some probe ID appears 4 times.
	counts := map[int32]int{}
	for _, b := range f.Blocks {
		if pr := probe.BlockProbe(b); pr != nil {
			counts[pr.ID]++
		}
	}
	found4 := false
	for _, c := range counts {
		if c == 4 {
			found4 = true
		}
	}
	if !found4 {
		t.Fatalf("duplicated probes missing: %v", counts)
	}
	// Weights scaled down by the factor.
	for _, b := range f.Blocks {
		if b.HasWeight && b.Weight == 1000 && len(b.Term.Succs) == 2 {
			t.Fatalf("loop block weight not scaled:\n%s", f)
		}
	}
}

const diamondSrc = `
func main(a) {
	var x = 0;
	if (a % 2 == 0) { x = a + 1; } else { x = a - 1; }
	return x;
}`

func TestIfConvert(t *testing.T) {
	p := lower(t, diamondSrc, false)
	f := p.Funcs["main"]
	res := IfConvert(f, BarrierNone, 3)
	if res.Converted != 1 {
		t.Fatalf("diamond not converted:\n%s", f)
	}
	branches := 0
	selects := 0
	for _, b := range f.Blocks {
		if b.Term.Kind == ir.TermBranch {
			branches++
		}
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpSelect {
				selects++
			}
		}
	}
	if branches != 0 || selects == 0 {
		t.Fatalf("branches=%d selects=%d:\n%s", branches, selects, f)
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestIfConvertBarriers(t *testing.T) {
	// Strong barrier (instrumentation): blocked.
	p1 := lower(t, diamondSrc, true)
	res1 := IfConvert(p1.Funcs["main"], BarrierStrong, 3)
	if res1.Converted != 0 || res1.Blocked == 0 {
		t.Fatalf("strong barrier should block: %+v", res1)
	}
	// Weak barrier (tuned pseudo-probes): proceeds.
	p2 := lower(t, diamondSrc, true)
	res2 := IfConvert(p2.Funcs["main"], BarrierWeak, 3)
	if res2.Converted != 1 {
		t.Fatalf("weak barrier should proceed: %+v", res2)
	}
	if err := p2.Funcs["main"].Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestTCEMarksTailCalls(t *testing.T) {
	p := lower(t, `
func main(a) { return chain(a); }
func chain(x) { return x * 2; }`, false)
	if n := TCE(p.Funcs["main"]); n != 1 {
		t.Fatalf("tail call not marked: %d", n)
	}
	var marked *ir.Instr
	for _, b := range p.Funcs["main"].Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].TailCall {
				marked = &b.Instrs[i]
			}
		}
	}
	if marked == nil || marked.Callee != "chain" {
		t.Fatal("wrong instruction marked")
	}
}

func TestTCESkipsNonTailCalls(t *testing.T) {
	p := lower(t, `
func main(a) { return helper(a) + 1; }
func helper(x) { return x; }`, false)
	if n := TCE(p.Funcs["main"]); n != 0 {
		t.Fatalf("non-tail call marked: %d", n)
	}
}

func TestLayoutPutsHotSuccessorFallthrough(t *testing.T) {
	p := lower(t, diamondSrc, false)
	f := p.Funcs["main"]
	// Annotate: else-arm hot.
	f.RebuildCFG()
	entry := f.Entry()
	thenB, elseB := entry.Term.Succs[0], entry.Term.Succs[1]
	entry.Weight, entry.HasWeight = 100, true
	thenB.Weight, thenB.HasWeight = 1, true
	elseB.Weight, elseB.HasWeight = 99, true
	entry.Term.EdgeW = []uint64{1, 99}
	for _, b := range f.Blocks {
		if b == entry {
			continue
		}
		if !b.HasWeight {
			b.Weight, b.HasWeight = 100, true
		}
		b.Term.EnsureEdgeWeights()
		for i := range b.Term.EdgeW {
			b.Term.EdgeW[i] = b.Weight
		}
	}
	if !Layout(f) {
		t.Fatalf("layout did not run:\n%s", f)
	}
	// The hot arm must directly follow the entry in layout order.
	if f.Blocks[0] != entry || f.Blocks[1] != elseB {
		t.Fatalf("hot arm not fallthrough: order %d,%d,...", f.Blocks[0].ID, f.Blocks[1].ID)
	}
}

func TestSplitMarksColdBlocks(t *testing.T) {
	p := lower(t, diamondSrc, false)
	f := p.Funcs["main"]
	f.RebuildCFG()
	for i, b := range f.Blocks {
		b.HasWeight = true
		if i == 2 {
			b.Weight = 0
		} else {
			b.Weight = 100
		}
	}
	if n := Split(f); n != 1 {
		t.Fatalf("split marked %d", n)
	}
	if !f.Blocks[2].Cold {
		t.Fatal("wrong block marked")
	}
	if f.Entry().Cold {
		t.Fatal("entry must never be cold")
	}
}

func TestAnnotateProbeProfile(t *testing.T) {
	p := lower(t, diamondSrc, true)
	f := p.Funcs["main"]
	prof := profdata.New(profdata.ProbeBased, false)
	fp := prof.FuncProfile("main")
	fp.Checksum = f.Checksum
	fp.HeadSamples = 50
	fp.AddBody(profdata.LocKey{ID: 1}, 50)
	fp.AddBody(profdata.LocKey{ID: 2}, 30)
	fp.AddBody(profdata.LocKey{ID: 3}, 20)
	st := Annotate(p, prof)
	if st.Annotated != 1 {
		t.Fatalf("annotate: %+v", st)
	}
	if !f.HasProfile || f.EntryCount != 50 {
		t.Fatalf("entry count: %d", f.EntryCount)
	}
	if f.Entry().Weight != 50 || !f.Entry().HasWeight {
		t.Fatalf("entry weight: %d", f.Entry().Weight)
	}
}

func TestAnnotateRejectsStaleChecksum(t *testing.T) {
	p := lower(t, diamondSrc, true)
	prof := profdata.New(profdata.ProbeBased, false)
	fp := prof.FuncProfile("main")
	fp.Checksum = 0xDEAD // mismatches
	fp.AddBody(profdata.LocKey{ID: 1}, 50)
	st := Annotate(p, prof)
	if st.Stale != 1 || st.Annotated != 0 {
		t.Fatalf("stale profile accepted: %+v", st)
	}
	if p.Funcs["main"].HasProfile {
		t.Fatal("stale profile annotated anyway")
	}
}

func TestAnnotateLineProfile(t *testing.T) {
	p := lower(t, diamondSrc, false)
	f := p.Funcs["main"]
	prof := profdata.New(profdata.LineBased, false)
	fp := prof.FuncProfile("main")
	fp.HeadSamples = 10
	// diamondSrc: func at line 2; `x = a + 1` on line 4 → offset 2.
	fp.AddBody(profdata.LocKey{ID: 2}, 40)
	st := Annotate(p, prof)
	if st.Annotated != 1 {
		t.Fatalf("%+v", st)
	}
	found := false
	for _, b := range f.Blocks {
		if b.HasWeight && b.Weight == 40 {
			found = true
		}
	}
	if !found {
		t.Fatalf("line-offset annotation missed:\n%s", f)
	}
}

func TestInlineCallMechanics(t *testing.T) {
	p := lower(t, `
func main(a) { var r = helper(a, 3); return r + 1; }
func helper(x, y) { if (x > y) { return x; } return y; }`, true)
	f := p.Funcs["main"]
	var b *ir.Block
	idx := -1
	for _, bb := range f.Blocks {
		for i := range bb.Instrs {
			if bb.Instrs[i].Op == ir.OpCall {
				b, idx = bb, i
			}
		}
	}
	callProbeID := b.Instrs[idx].Probe.ID
	if err := InlineCall(p, f, b, idx, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("post-inline verify: %v\n%s", err, f)
	}
	// No calls remain.
	for _, bb := range f.Blocks {
		for i := range bb.Instrs {
			if bb.Instrs[i].Op == ir.OpCall {
				t.Fatal("call not removed")
			}
		}
	}
	// Inlined probes carry the callee identity + inline chain through the
	// call site, and inlined locations have 2-deep chains.
	probes, locs := 0, 0
	for _, bb := range f.Blocks {
		for i := range bb.Instrs {
			in := &bb.Instrs[i]
			if in.Op == ir.OpProbe && in.Probe.Func == "helper" {
				probes++
				if in.Probe.InlinedAt == nil ||
					in.Probe.InlinedAt.Func != "main" ||
					in.Probe.InlinedAt.CallID != callProbeID {
					t.Fatalf("bad inline chain: %+v", in.Probe)
				}
			}
			if in.Loc != nil && in.Loc.Depth() == 2 && in.Loc.Func == "helper" {
				locs++
			}
		}
	}
	if probes == 0 {
		t.Fatal("no inlined probes found")
	}
	if locs == 0 {
		t.Fatal("no re-parented locations found")
	}
}

func TestInlineScalesContextInsensitively(t *testing.T) {
	p := lower(t, `
func main(a) { var r = helper(a); return r; }
func helper(x) { if (x > 0) { return 1; } return 2; }`, true)
	f, h := p.Funcs["main"], p.Funcs["helper"]
	h.HasProfile, h.EntryCount = true, 100
	f.HasProfile, f.EntryCount = true, 10
	for _, bb := range h.Blocks {
		bb.Weight, bb.HasWeight = 100, true
	}
	h.Entry().Weight = 100
	var b *ir.Block
	idx := -1
	for _, bb := range f.Blocks {
		bb.Weight, bb.HasWeight = 10, true
		for i := range bb.Instrs {
			if bb.Instrs[i].Op == ir.OpCall {
				b, idx = bb, i
			}
		}
	}
	if err := InlineCall(p, f, b, idx, nil); err != nil {
		t.Fatal(err)
	}
	// Cloned blocks scale 100 * 10/100 = 10.
	for _, bb := range f.Blocks {
		for i := range bb.Instrs {
			in := &bb.Instrs[i]
			if in.Op == ir.OpProbe && in.Probe.Func == "helper" && in.Probe.Kind == ir.ProbeBlock {
				if bb.Weight != 10 {
					t.Fatalf("inlined block weight = %d, want 10", bb.Weight)
				}
			}
		}
	}
}

func TestBottomUpInlineRespectsThinLTO(t *testing.T) {
	f1, err := source.Parse("mod1", `func main(a) { return big(a) + tiny(a); }`)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := source.Parse("mod2", `
func big(x) {
	var s = 0;
	s = s + x * 1; s = s + x * 2; s = s + x * 3; s = s + x * 4;
	s = s + x * 5; s = s + x * 6; s = s + x * 7; s = s + x * 8;
	return s;
}
func tiny(x) { return x + 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := irgen.Lower(f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultInlineParams()
	params.SizeThreshold = 100 // same-module would admit big
	BottomUpInline(p, params, false)
	calls := map[string]bool{}
	for _, b := range p.Funcs["main"].Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpCall {
				calls[b.Instrs[i].Callee] = true
			}
		}
	}
	if !calls["big"] {
		t.Fatal("cross-module big callee must not be imported (ThinLTO summary limit)")
	}
	if calls["tiny"] {
		t.Fatal("tiny cross-module callee should have been imported and inlined")
	}
}
