package opt

import (
	"sort"

	"csspgo/internal/ir"
)

// Layout reorders the function's blocks to maximize fallthrough along hot
// edges — an Ext-TSP-inspired greedy chain merge (Newell & Pupyrev [15],
// degenerating to Pettis-Hansen chaining): every block starts as its own
// chain; candidate (tail→head) edges merge chains in decreasing weight
// order; the entry chain is laid first and remaining chains follow in
// decreasing hotness. Codegen's fallthrough elision and branch-polarity
// selection then turn hot edges into straight-line execution.
//
// Requires edge weights (run inference first); does nothing without them.
func Layout(f *ir.Function) bool {
	hasW := false
	for _, b := range f.Blocks {
		if b.HasWeight {
			hasW = true
			break
		}
	}
	if !hasW || len(f.Blocks) < 3 {
		return false
	}

	chainOf := map[*ir.Block]int{}
	chains := map[int][]*ir.Block{}
	for i, b := range f.Blocks {
		chainOf[b] = i
		chains[i] = []*ir.Block{b}
	}

	type edge struct {
		from, to *ir.Block
		w        uint64
	}
	var edges []edge
	for _, b := range f.Blocks {
		b.Term.EnsureEdgeWeights()
		for si, s := range b.Term.Succs {
			if s == b {
				continue
			}
			edges = append(edges, edge{from: b, to: s, w: b.Term.EdgeW[si]})
		}
	}
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w
		}
		if edges[i].from.ID != edges[j].from.ID {
			return edges[i].from.ID < edges[j].from.ID
		}
		return edges[i].to.ID < edges[j].to.ID
	})

	for _, e := range edges {
		cf, ct := chainOf[e.from], chainOf[e.to]
		if cf == ct {
			continue
		}
		// Merge only tail-of-cf → head-of-ct.
		tail := chains[cf][len(chains[cf])-1]
		head := chains[ct][0]
		if tail != e.from || head != e.to {
			continue
		}
		// The entry block must stay a chain head.
		if head == f.Entry() {
			continue
		}
		merged := append(chains[cf], chains[ct]...)
		chains[cf] = merged
		for _, b := range chains[ct] {
			chainOf[b] = cf
		}
		delete(chains, ct)
	}

	// Order chains: entry first, then by max block weight descending.
	type chainInfo struct {
		id   int
		heat uint64
		min  int // smallest block ID, for deterministic ties
	}
	var infos []chainInfo
	entryChain := chainOf[f.Entry()]
	for id, blocks := range chains {
		ci := chainInfo{id: id, min: blocks[0].ID}
		for _, b := range blocks {
			if b.Weight > ci.heat {
				ci.heat = b.Weight
			}
			if b.ID < ci.min {
				ci.min = b.ID
			}
		}
		infos = append(infos, ci)
	}
	sort.Slice(infos, func(i, j int) bool {
		if infos[i].id == entryChain {
			return true
		}
		if infos[j].id == entryChain {
			return false
		}
		if infos[i].heat != infos[j].heat {
			return infos[i].heat > infos[j].heat
		}
		return infos[i].min < infos[j].min
	})

	var order []*ir.Block
	for _, ci := range infos {
		order = append(order, chains[ci.id]...)
	}
	if len(order) != len(f.Blocks) {
		return false // unreachable blocks missing; bail conservatively
	}
	f.Blocks = order
	return true
}

// LayoutProgram lays out every function with a profile; returns how many
// functions were reordered.
// layoutPass only reorders blocks; weights and edges are untouched, so the
// flow guarantee established by inference survives it.
var layoutPass = registerPass("layout", flowPreserves, semStructural)

func LayoutProgram(p *ir.Program) int {
	n := 0
	for _, f := range p.Functions() {
		f.RemoveUnreachable()
		if Layout(f) {
			n++
		}
	}
	return n
}
