package opt

import "csspgo/internal/ir"

// regSet is a dense bitset over a function's virtual registers.
type regSet []uint64

func newRegSet(n int) regSet { return make(regSet, (n+63)/64) }

func (s regSet) set(r ir.Reg) {
	if r >= 0 {
		s[r/64] |= 1 << (uint(r) % 64)
	}
}

func (s regSet) has(r ir.Reg) bool {
	return r >= 0 && s[r/64]&(1<<(uint(r)%64)) != 0
}

func (s regSet) clear(r ir.Reg) {
	if r >= 0 {
		s[r/64] &^= 1 << (uint(r) % 64)
	}
}

// orInto merges o into s; reports whether s changed.
func (s regSet) orInto(o regSet) bool {
	changed := false
	for i := range s {
		nv := s[i] | o[i]
		if nv != s[i] {
			s[i] = nv
			changed = true
		}
	}
	return changed
}

func (s regSet) clone() regSet { return append(regSet(nil), s...) }

// uses visits every register an instruction reads.
func uses(in *ir.Instr, visit func(ir.Reg)) {
	switch in.Op {
	case ir.OpBin:
		visit(in.A)
		visit(in.B)
	case ir.OpNot, ir.OpNeg, ir.OpMove:
		visit(in.A)
	case ir.OpSelect:
		visit(in.A)
		visit(in.B)
		visit(in.C)
	case ir.OpLoadG:
		visit(in.Index)
	case ir.OpStoreG:
		visit(in.A)
		visit(in.Index)
	case ir.OpCall:
		for _, a := range in.Args {
			visit(a)
		}
	case ir.OpICall:
		visit(in.A)
		for _, a := range in.Args {
			visit(a)
		}
	}
}

// def returns the register an instruction writes, or NoReg.
func def(in *ir.Instr) ir.Reg {
	switch in.Op {
	case ir.OpConst, ir.OpBin, ir.OpNot, ir.OpNeg, ir.OpMove, ir.OpSelect, ir.OpLoadG, ir.OpCall,
		ir.OpFuncRef, ir.OpICall:
		return in.Dst
	}
	return ir.NoReg
}

// hasSideEffects reports whether an instruction must be preserved even if
// its result is unused.
func hasSideEffects(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpStoreG, ir.OpCall, ir.OpICall, ir.OpProbe, ir.OpCounter:
		return true
	}
	return false
}

// termUses visits registers a terminator reads.
func termUses(t *ir.Terminator, visit func(ir.Reg)) {
	switch t.Kind {
	case ir.TermBranch, ir.TermSwitch:
		visit(t.Cond)
	case ir.TermReturn:
		visit(t.Val)
	}
}

// liveOut computes per-block live-out register sets by backward iteration.
func liveOut(f *ir.Function) map[*ir.Block]regSet {
	in := map[*ir.Block]regSet{}
	out := map[*ir.Block]regSet{}
	for _, b := range f.Blocks {
		in[b] = newRegSet(f.NRegs)
		out[b] = newRegSet(f.NRegs)
	}
	// use/def per block.
	useB := map[*ir.Block]regSet{}
	defB := map[*ir.Block]regSet{}
	for _, b := range f.Blocks {
		u, d := newRegSet(f.NRegs), newRegSet(f.NRegs)
		for i := range b.Instrs {
			uses(&b.Instrs[i], func(r ir.Reg) {
				if r >= 0 && !d.has(r) {
					u.set(r)
				}
			})
			if dr := def(&b.Instrs[i]); dr >= 0 {
				d.set(dr)
			}
		}
		termUses(&b.Term, func(r ir.Reg) {
			if r >= 0 && !d.has(r) {
				u.set(r)
			}
		})
		useB[b], defB[b] = u, d
	}
	for changed := true; changed; {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			o := out[b]
			for _, s := range b.Term.Succs {
				if o.orInto(in[s]) {
					changed = true
				}
			}
			// in = use ∪ (out − def)
			ni := o.clone()
			for w := range ni {
				ni[w] &^= defB[b][w]
				ni[w] |= useB[b][w]
			}
			if in[b].orInto(ni) {
				changed = true
			}
		}
	}
	return out
}
