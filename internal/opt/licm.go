package opt

import "csspgo/internal/ir"

// LICM hoists loop-invariant pure computation into a preheader — the
// code-motion class of optimization that damages debug-info correlation:
// hoisted instructions keep their source lines while moving to a colder
// block. Probes are never moved (their frequency semantics forbid it).
//
// The IR is not SSA and statement temporaries are reused, so hoisting works
// by chain renaming: an invariant instruction is cloned into the preheader
// with a fresh destination register, subsequent in-block uses are renamed,
// and the original instruction is dropped (or replaced by a register move
// when its value is live out of the block). Invariance propagates along
// renamed chains, so whole invariant expression trees move out together.
//
// Returns the number of instructions hoisted.
// licmPass may materialize preheader blocks without profile weights.
var licmPass = registerPass("licm", flowPerturbs, semRestructures)

func LICM(f *ir.Function) int {
	hoisted := 0
	for _, loop := range f.NaturalLoops() {
		hoisted += licmLoop(f, loop)
	}
	if hoisted > 0 {
		f.RebuildCFG()
	}
	return hoisted
}

func licmLoop(f *ir.Function, loop *ir.Loop) int {
	idom := f.Dominators()

	// Registers defined anywhere in the loop.
	defCount := map[ir.Reg]int{}
	for b := range loop.Blocks {
		for i := range b.Instrs {
			if d := def(&b.Instrs[i]); d >= 0 {
				defCount[d]++
			}
		}
	}
	// Globals stored in the loop and calls block load hoisting.
	storedGlobals := map[string]bool{}
	hasCalls := false
	for b := range loop.Blocks {
		for i := range b.Instrs {
			switch b.Instrs[i].Op {
			case ir.OpStoreG:
				storedGlobals[b.Instrs[i].Global] = true
			case ir.OpCall, ir.OpICall:
				hasCalls = true
			}
		}
	}

	dominatesAllLatches := func(b *ir.Block) bool {
		for _, l := range loop.Latches {
			if !ir.Dominates(idom, b, l) {
				return false
			}
		}
		return true
	}

	var preheader *ir.Block
	getPreheader := func() *ir.Block {
		if preheader == nil {
			preheader = ensurePreheader(f, loop)
		}
		return preheader
	}

	liveouts := liveOut(f)
	hoisted := 0
	for b := range loop.Blocks {
		if !dominatesAllLatches(b) {
			continue
		}
		hoisted += licmBlock(f, loop, b, defCount, storedGlobals, hasCalls, getPreheader, liveouts[b])
	}
	return hoisted
}

// licmBlock hoists invariant chains out of one always-executed loop block.
func licmBlock(f *ir.Function, loop *ir.Loop, b *ir.Block,
	defCount map[ir.Reg]int, storedGlobals map[string]bool, hasCalls bool,
	getPreheader func() *ir.Block, liveOutB regSet) int {

	// rename maps a register to its hoisted preheader copy, valid until the
	// register's next non-hoisted definition in this block.
	rename := map[ir.Reg]ir.Reg{}
	// lastHoisted tracks, per register, whether its most recent def in this
	// block was hoisted (to decide on a residual move at the end).
	lastHoisted := map[ir.Reg]bool{}

	invariantOperand := func(r ir.Reg) bool {
		if r == ir.NoReg {
			return true
		}
		if _, ok := rename[r]; ok {
			return true
		}
		return defCount[r] == 0
	}

	hoistedCount := 0
	kept := b.Instrs[:0]
	for i := range b.Instrs {
		in := b.Instrs[i]
		invariant := false
		switch in.Op {
		case ir.OpConst, ir.OpFuncRef:
			invariant = true
		case ir.OpBin, ir.OpNot, ir.OpNeg, ir.OpMove, ir.OpSelect:
			invariant = invariantOperand(in.A) && invariantOperand(in.B) && invariantOperand(in.C)
			if in.Op != ir.OpBin && in.Op != ir.OpSelect {
				invariant = invariantOperand(in.A)
			}
			if in.Op == ir.OpBin {
				invariant = invariantOperand(in.A) && invariantOperand(in.B)
			}
		case ir.OpLoadG:
			invariant = !storedGlobals[in.Global] && !hasCalls && invariantOperand(in.Index)
		}
		d := def(&in)
		if !invariant || d < 0 {
			// Not hoisted: uses of renamed regs still see preheader copies.
			remapUses(&in, rename)
			if d >= 0 {
				delete(rename, d)
				lastHoisted[d] = false
			}
			kept = append(kept, in)
			continue
		}
		ph := getPreheader()
		if ph == nil {
			remapUses(&in, rename)
			delete(rename, d)
			lastHoisted[d] = false
			kept = append(kept, in)
			continue
		}
		// Hoist a renamed clone; keep the original Loc (code motion keeps
		// the source line — the correlation hazard).
		clone := in.Clone()
		remapUses(&clone, rename)
		nr := f.NewReg()
		clone.Dst = nr
		ph.Instrs = append(ph.Instrs, clone)
		rename[d] = nr
		lastHoisted[d] = true
		hoistedCount++
	}
	b.Instrs = append([]ir.Instr(nil), kept...)

	// Residual moves for hoisted values that are live out of the block.
	termUses(&b.Term, func(r ir.Reg) {
		if nr, ok := rename[r]; ok && lastHoisted[r] {
			b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpMove, Dst: r, A: nr})
			delete(rename, r)
		}
	})
	for r, nr := range rename {
		if lastHoisted[r] && liveOutB.has(r) {
			b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpMove, Dst: r, A: nr})
		}
	}
	return hoistedCount
}

func remapUses(in *ir.Instr, rename map[ir.Reg]ir.Reg) {
	get := func(r ir.Reg) ir.Reg {
		if nr, ok := rename[r]; ok {
			return nr
		}
		return r
	}
	switch in.Op {
	case ir.OpBin:
		in.A, in.B = get(in.A), get(in.B)
	case ir.OpNot, ir.OpNeg, ir.OpMove:
		in.A = get(in.A)
	case ir.OpSelect:
		in.A, in.B, in.C = get(in.A), get(in.B), get(in.C)
	case ir.OpLoadG:
		if in.Index != ir.NoReg {
			in.Index = get(in.Index)
		}
	case ir.OpStoreG:
		in.A = get(in.A)
		if in.Index != ir.NoReg {
			in.Index = get(in.Index)
		}
	case ir.OpCall:
		for i := range in.Args {
			in.Args[i] = get(in.Args[i])
		}
	case ir.OpICall:
		in.A = get(in.A)
		for i := range in.Args {
			in.Args[i] = get(in.Args[i])
		}
	}
}

// ensurePreheader returns (creating if needed) a block that is the unique
// non-latch predecessor of the loop header. Returns nil when the header's
// edges cannot be safely rewritten.
func ensurePreheader(f *ir.Function, loop *ir.Loop) *ir.Block {
	header := loop.Header
	f.RebuildCFG()
	var outside []*ir.Block
	for _, p := range header.Preds {
		if !loop.Blocks[p] {
			outside = append(outside, p)
		}
	}
	if header == f.Entry() {
		return nil
	}
	if len(outside) == 1 && outside[0].Term.Kind == ir.TermJump {
		return outside[0]
	}
	ph := f.NewBlock()
	ph.Term = ir.Terminator{Kind: ir.TermJump, Succs: []*ir.Block{header}}
	var w uint64
	hasW := false
	for _, p := range outside {
		for si, s := range p.Term.Succs {
			if s == header {
				p.Term.Succs[si] = ph
				if si < len(p.Term.EdgeW) {
					w += p.Term.EdgeW[si]
					hasW = true
				}
			}
		}
	}
	ph.Weight = w
	ph.HasWeight = hasW
	ph.Term.EdgeW = []uint64{w}
	f.RebuildCFG()
	return ph
}
