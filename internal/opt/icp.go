package opt

import (
	"csspgo/internal/ir"
	"csspgo/internal/probe"
	"csspgo/internal/profdata"
)

// ICPParams tunes indirect-call promotion.
type ICPParams struct {
	// MinRatioPct: the dominant target must cover at least this share of
	// the site's sampled targets.
	MinRatioPct int
	// MinCount: minimum sampled/counted calls to the dominant target.
	MinCount uint64
	// MaxPerFunction bounds promotions per function.
	MaxPerFunction int
}

// DefaultICPParams returns production-flavoured thresholds.
func DefaultICPParams() ICPParams {
	// High dominance required: a guarded compare at a 70/30 site
	// mispredicts as often as the indirect branch it replaces; the win
	// appears at ~85%+ dominance (plus the inlining it unlocks).
	return ICPParams{MinRatioPct: 80, MinCount: 6, MaxPerFunction: 8}
}

// ICP performs profile-guided indirect-call promotion: an indirect call
// whose target distribution is dominated by one callee is rewritten to
//
//	if target == &dominant { dominant(args) } else { icall target(args) }
//
// making the hot path a direct call that later inlining can consume. The
// target distributions come from value profiles: exact histograms under
// instrumentation PGO, LBR-sampled ones under sampling PGO — the quality
// gap the paper names as instrumentation's remaining advantage.
//
// Both copies of the call keep the original call-site probe (duplication
// semantics: future probe profiles sum the copies), and block weights are
// split by the observed ratio. Returns the number of promotions.
func ICP(p *ir.Program, f *ir.Function, prof *profdata.Profile, params ICPParams) int {
	if prof == nil {
		return 0
	}
	promotions := 0
	// The fallback copy a promotion leaves behind matches the same profile
	// entry; remember promoted sites so each is rewritten at most once.
	type siteKey struct {
		owner string
		loc   profdata.LocKey
	}
	done := map[siteKey]bool{}
	for pass := 0; pass < params.MaxPerFunction; pass++ {
		promoted := false
		for _, b := range f.Blocks {
			for i := 0; i < len(b.Instrs); i++ {
				in := &b.Instrs[i]
				if in.Op != ir.OpICall {
					continue
				}
				owner, loc, ok := icallLoc(f, in, prof.Kind)
				if !ok || done[siteKey{owner, loc}] {
					continue
				}
				done[siteKey{owner, loc}] = true
				fp := prof.Funcs[owner]
				if fp == nil {
					continue
				}
				targets := fp.Calls[loc]
				dominant, domCount, total := dominantTarget(targets)
				if dominant == "" || total == 0 || domCount < params.MinCount {
					continue
				}
				if int(100*domCount/total) < params.MinRatioPct {
					continue
				}
				if _, exists := p.Funcs[dominant]; !exists {
					continue
				}
				promoteICall(p, f, b, i, dominant, domCount, total)
				promotions++
				promoted = true
				break
			}
			if promoted {
				break
			}
		}
		if !promoted {
			break
		}
	}
	if promotions > 0 {
		f.RebuildCFG()
	}
	return promotions
}

// icallLoc keys the indirect call in the profile's location space: the
// owning (defining) function plus its location there. Inlined copies keep
// their original identity (the probe's defining function, or the leaf
// debug frame), so promotion still finds target data after inlining.
func icallLoc(f *ir.Function, in *ir.Instr, kind profdata.Kind) (string, profdata.LocKey, bool) {
	if kind == profdata.ProbeBased {
		if in.Probe == nil {
			return "", profdata.LocKey{}, false
		}
		return in.Probe.Func, profdata.LocKey{ID: in.Probe.ID}, true
	}
	if in.Loc == nil {
		return "", profdata.LocKey{}, false
	}
	// Leaf debug frame: line offset is relative to the defining function.
	var start int32
	if in.Loc.Func == f.Name {
		start = f.StartLine
	} else {
		return "", profdata.LocKey{}, false // offset base unknown here
	}
	return in.Loc.Func, profdata.LocKey{ID: in.Loc.Line - start, Disc: in.Loc.Disc}, true
}

func dominantTarget(targets map[string]uint64) (string, uint64, uint64) {
	var best string
	var bestN, total uint64
	for callee, n := range targets {
		total += n
		if n > bestN || n == bestN && callee < best {
			best = callee
			bestN = n
		}
	}
	return best, bestN, total
}

// promoteICall rewrites the indirect call at (b, idx) into a guarded
// direct call to dominant.
func promoteICall(p *ir.Program, f *ir.Function, b *ir.Block, idx int, dominant string, domCount, total uint64) {
	icall := b.Instrs[idx]

	direct := f.NewBlock()
	indirect := f.NewBlock()
	merge := f.NewBlock()

	// Split b after the icall; the merge block takes the tail.
	merge.Instrs = append(merge.Instrs, b.Instrs[idx+1:]...)
	merge.Term = b.Term
	b.Instrs = b.Instrs[:idx]

	fref := f.NewReg()
	cmp := f.NewReg()
	b.Instrs = append(b.Instrs,
		ir.Instr{Op: ir.OpFuncRef, Dst: fref, Callee: dominant, Loc: icall.Loc},
		ir.Instr{Op: ir.OpBin, BinKind: ir.BinEq, Dst: cmp, A: icall.A, B: fref, Loc: icall.Loc},
	)
	b.Term = ir.Terminator{Kind: ir.TermBranch, Cond: cmp, Succs: []*ir.Block{direct, indirect}, Loc: icall.Loc}

	// Direct copy: a real call, same probe (duplication), same Loc.
	directCall := icall.Clone()
	directCall.Op = ir.OpCall
	directCall.Callee = dominant
	directCall.A = ir.NoReg
	direct.Instrs = append(direct.Instrs, directCall)
	direct.Term = ir.Terminator{Kind: ir.TermJump, Succs: []*ir.Block{merge}}

	indirectCall := icall.Clone()
	indirect.Instrs = append(indirect.Instrs, indirectCall)
	indirect.Term = ir.Terminator{Kind: ir.TermJump, Succs: []*ir.Block{merge}}

	// Profile maintenance: split by observed ratio.
	if b.HasWeight {
		dw := b.Weight * domCount / total
		direct.Weight, direct.HasWeight = dw, true
		indirect.Weight, indirect.HasWeight = b.Weight-dw, true
		merge.Weight, merge.HasWeight = b.Weight, true
		b.Term.EdgeW = []uint64{direct.Weight, indirect.Weight}
		direct.Term.EdgeW = []uint64{direct.Weight}
		indirect.Term.EdgeW = []uint64{indirect.Weight}
	}
	_ = probe.BlockProbe // (block probes for the new blocks are intentionally absent: they are compiler-introduced control flow, like LLVM's ICP-generated blocks)
	_ = p
}

// ICPProgram promotes across the whole program. prof must be a flat
// (context-insensitive) view of the input profile — callers pass a
// flattened clone so context-sensitive inputs also feed target data.
//
// The per-site count floor is derived from the profile summary (LLVM
// -style): a site qualifies only when its dominant target's count reaches
// the program's hot-count threshold, so exact (instrumentation) profiles
// don't promote every lukewarm site just because their counts are precise.
// icpPass splits blocks and adds compare/branch diamonds with estimated
// weights — not flow-conserved until the next inference run.
var icpPass = registerPass("icp", flowPerturbs, semRestructures)

func ICPProgram(p *ir.Program, prof *profdata.Profile, params ICPParams) int {
	if hot := hotCallThreshold(prof); hot > params.MinCount {
		params.MinCount = hot
	}
	n := 0
	for _, f := range p.Functions() {
		if !f.HasProfile {
			continue
		}
		n += ICP(p, f, prof, params)
	}
	return n
}

// hotCallThreshold derives the hot bar from the call-site count
// distribution itself: a site qualifies when its traffic is within 16x of
// the program's hottest call site. This scales with profile units (sample
// counts vs exact execution counts) so exact instrumentation profiles
// don't promote every lukewarm site merely because their counts are
// precise.
func hotCallThreshold(prof *profdata.Profile) uint64 {
	var max uint64
	for _, fp := range prof.Funcs {
		for _, m := range fp.Calls {
			var total uint64
			for _, n := range m {
				total += n
			}
			if total > max {
				max = total
			}
		}
	}
	return max / 16
}
