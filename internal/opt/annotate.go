package opt

import (
	"csspgo/internal/ir"
	"csspgo/internal/probe"
	"csspgo/internal/profdata"
	"csspgo/internal/stale"
)

// AnnotateStats reports annotation outcomes, including how far down the
// degradation ladder each stale function landed: exact checksum match →
// anchor-matched → flat fallback → dropped.
type AnnotateStats struct {
	Annotated int
	Stale     int // probe checksum mismatches detected (= Matched + FlatFallback + Dropped)
	NoProfile int

	Matched         int     // stale profiles recovered by the anchor matcher
	FlatFallback    int     // stale profiles degraded to a uniform flat annotation
	Dropped         int     // stale profiles discarded (matching disabled)
	RecoveredProbes int     // old probe IDs whose counts the matcher transferred
	QualitySum      float64 // sum of match qualities over Matched functions
}

// Annotate maps base (context-insensitive) function profiles onto the IR:
// block weights, entry counts. For probe-keyed profiles, blocks match by
// probe ID and a CFG-checksum mismatch rejects the whole function profile
// (stale after source drift — §III.A). For line-keyed profiles, blocks take
// the maximum count among their statements' line offsets; line profiles
// carry no checksum, so drifted profiles silently annotate wrong blocks —
// the failure mode pseudo-instrumentation eliminates.
// annotatePass: raw profile counts are not flow-conserved until inference.
var annotatePass = registerPass("annotate", flowPerturbs, semStructural)

func Annotate(p *ir.Program, prof *profdata.Profile) AnnotateStats {
	return AnnotateWithMatcher(p, prof, nil)
}

// AnnotateWithMatcher is Annotate with the degradation ladder enabled: a
// non-nil matcher lets stale probe-based profiles degrade to anchor-matched
// counts, and failing that to a flat (context- and position-insensitive)
// fallback, instead of being dropped.
func AnnotateWithMatcher(p *ir.Program, prof *profdata.Profile, m *stale.Matcher) AnnotateStats {
	var st AnnotateStats
	for _, f := range p.Functions() {
		fp := prof.Funcs[f.Name]
		if fp == nil || fp.TotalSamples == 0 && fp.HeadSamples == 0 {
			st.NoProfile++
			continue
		}
		if prof.Kind == profdata.ProbeBased {
			if fp.Checksum != 0 && f.Checksum != 0 && fp.Checksum != f.Checksum {
				st.Stale++
				degradeStale(f, fp, m, &st)
				continue
			}
			annotateProbe(f, fp)
		} else {
			annotateLine(f, fp)
		}
		f.EntryCount = fp.HeadSamples
		f.HasProfile = true
		st.Annotated++
	}
	return st
}

// degradeStale walks the sub-exact rungs of the degradation ladder for one
// stale function profile and reports whether f received any annotation.
func degradeStale(f *ir.Function, fp *profdata.FunctionProfile, m *stale.Matcher, st *AnnotateStats) bool {
	if m == nil {
		st.Dropped++
		return false
	}
	if res := m.Match(f, fp); res.OK {
		annotateProbe(f, res.Profile)
		f.EntryCount = res.Profile.HeadSamples
		f.HasProfile = true
		st.Matched++
		st.RecoveredProbes += res.RecoveredProbes
		st.QualitySum += res.Quality
		return true
	}
	annotateFlat(f, fp)
	st.FlatFallback++
	return true
}

// annotateFlat is the last profiled rung of the ladder: the function is
// known hot (its total mass survived the drift) but no count can be placed,
// so the mass spreads uniformly — enough for function-level decisions
// (inlining hotness, layout, splitting nothing) without asserting anything
// about branch shape.
func annotateFlat(f *ir.Function, fp *profdata.FunctionProfile) {
	if len(f.Blocks) == 0 {
		return
	}
	w := fp.TotalSamples / uint64(len(f.Blocks))
	if w == 0 && fp.TotalSamples > 0 {
		w = 1
	}
	for _, b := range f.Blocks {
		b.Weight = w
		b.HasWeight = true
	}
	f.EntryCount = fp.HeadSamples
	if f.EntryCount == 0 {
		f.EntryCount = w
	}
	f.HasProfile = true
}

func annotateProbe(f *ir.Function, fp *profdata.FunctionProfile) {
	idx := probe.BuildIndex(f)
	for id, blocks := range idx.Blocks {
		// A probe with no profile entry was sampled zero times: with the
		// function sampled at all, absence is evidence of coldness.
		w := fp.BodyAt(profdata.LocKey{ID: id})
		for _, b := range blocks {
			b.Weight = w
			b.HasWeight = true
		}
	}
}

func annotateLine(f *ir.Function, fp *profdata.FunctionProfile) {
	for _, b := range f.Blocks {
		var w uint64
		has := false
		for i := range b.Instrs {
			loc := b.Instrs[i].Loc
			if loc == nil || loc.Parent != nil || loc.Func != f.Name {
				continue
			}
			key := profdata.LocKey{ID: loc.Line - f.StartLine, Disc: loc.Disc}
			if c, ok := fp.Blocks[key]; ok {
				has = true
				if c > w {
					w = c
				}
			} else {
				// A statement with no samples pulls the max down only if
				// nothing else matched; absence is not evidence of zero.
				_ = key
			}
		}
		if loc := b.Term.Loc; loc != nil && loc.Parent == nil && loc.Func == f.Name {
			key := profdata.LocKey{ID: loc.Line - f.StartLine, Disc: loc.Disc}
			if c, ok := fp.Blocks[key]; ok {
				has = true
				if c > w {
					w = c
				}
			}
		}
		if has {
			b.Weight = w
			b.HasWeight = true
		} else if fp.TotalSamples > 0 {
			// Function was sampled but this block never was: sampled zero.
			b.Weight = 0
			b.HasWeight = true
		}
	}
}

// PrepareCSProfile splits a context-sensitive profile for compilation:
// contexts whose ShouldInline bit is set (pre-inliner decisions), or — when
// decisions are absent and hotThreshold > 0 — contexts at least that hot,
// stay in the context table for the top-down sample inliner; every other
// context merges into its leaf's base profile so standalone functions get
// complete counts (Algorithm 2's move-to-base step performed at compile
// time). Returns the retained (inline-candidate) context count.
func PrepareCSProfile(prof *profdata.Profile, useDecisions bool, hotThreshold uint64) int {
	if !prof.CS {
		return 0
	}
	kept := 0
	for _, key := range prof.SortedContextKeys() {
		cp := prof.Contexts[key]
		keep := false
		// Depth-1 contexts (a bare function) have no caller frame and are
		// never inline candidates; they are the function's own top-level
		// samples and always fold into its base profile.
		if cp.Context.Depth() > 1 {
			if useDecisions {
				keep = cp.ShouldInline
			} else if hotThreshold > 0 {
				keep = cp.TotalSamples >= hotThreshold
			}
		}
		if keep {
			kept++
			continue
		}
		prof.MergeContextIntoBase(key)
	}
	return kept
}
