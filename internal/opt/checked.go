package opt

import (
	"fmt"
	"strings"
	"time"

	"csspgo/internal/analysis"
	"csspgo/internal/analysis/tv"
	"csspgo/internal/ir"
	"csspgo/internal/obs"
)

// PassViolation is the checked pipeline mode's failure report: the first
// pass after which the structural verifier or the analysis suite found an
// error, attributed to that pass and function, with IR snapshots from the
// last clean state and after the offending pass.
type PassViolation struct {
	Pass   string                // registered name of the offending pass
	Func   string                // function the violation was found in
	Diags  []analysis.Diagnostic // findings for that function (errors first)
	Before string                // function IR before the pass ("" if it did not exist)
	After  string                // function IR after the pass
}

// Error summarizes the violation on one line per finding.
func (v *PassViolation) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pass %q broke function %s: %d finding(s)", v.Pass, v.Func, len(v.Diags))
	for _, d := range v.Diags {
		sb.WriteString("\n  " + d.String())
	}
	return sb.String()
}

// Diff renders the before/after IR snapshot diff of the offending function.
func (v *PassViolation) Diff() string {
	return analysis.DiffLines(v.Before, v.After)
}

// Report renders the full human-readable report: attribution, findings and
// the IR diff.
func (v *PassViolation) Report() string {
	var sb strings.Builder
	sb.WriteString(v.Error())
	sb.WriteString("\nIR diff (before/after the pass):\n")
	sb.WriteString(v.Diff())
	return sb.String()
}

// checker implements Config.VerifyEach: after every registered pass it runs
// Function.Verify plus the analysis suite over the whole program and stops
// the pipeline at the first error-severity finding, keeping per-function IR
// snapshots from the last clean pass boundary for the report. With
// Config.ValidateSemantics it additionally runs the translation validator
// (internal/analysis/tv) at every boundary, under the pass's registered
// semantic contract.
type checker struct {
	p      *ir.Program
	cfg    *Config
	probed bool
	flowOK bool              // a restoring pass's flow guarantee is in force
	snaps  map[string]string // function name -> last clean IR snapshot
	tvv    *tv.Validator
}

func newChecker(p *ir.Program, cfg *Config) *checker {
	c := &checker{p: p, cfg: cfg, snaps: map[string]string{}}
	for _, f := range p.Functions() {
		if f.NumProbes > 0 {
			c.probed = true
		}
		c.snaps[f.Name] = f.String()
	}
	if cfg.ValidateSemantics {
		c.tvv = tv.NewValidator(p, cfg.TVInputs, cfg.TVMaxSteps)
	}
	return c
}

// after verifies the program state following the named pass. On the first
// function with an error-severity finding it returns a *PassViolation;
// otherwise it refreshes the snapshots and returns nil.
func (c *checker) after(pass PassID) error {
	switch pass.flow {
	case flowRestores:
		c.flowOK = true
	case flowPerturbs:
		c.flowOK = false
	}
	opts := analysis.DefaultOptions()
	opts.Flow = c.flowOK
	opts.Probes = c.probed

	for _, f := range c.p.Functions() {
		var diags []analysis.Diagnostic
		if err := f.Verify(); err != nil {
			diags = append(diags, analysis.Diagnostic{
				Sev: analysis.SevError, Check: "structure", Func: f.Name, Block: -1, Msg: err.Error(),
			})
		} else {
			diags = analysis.CheckFunction(f, opts)
		}
		if analysis.ErrorCount(diags) == 0 {
			continue
		}
		for i := range diags {
			diags[i].Pass = pass.name
		}
		return &PassViolation{
			Pass:   pass.name,
			Func:   f.Name,
			Diags:  diags,
			Before: c.snaps[f.Name],
			After:  f.String(),
		}
	}
	if err := c.validateSemantics(pass); err != nil {
		return err
	}
	for _, f := range c.p.Functions() {
		c.snaps[f.Name] = f.String()
	}
	return nil
}

// validateSemantics runs the translation validator at this pass boundary
// (no-op unless Config.ValidateSemantics), publishing its cost and verdict
// under the analysis.tv.* metrics and a "tv.<pass>" trace span.
func (c *checker) validateSemantics(pass PassID) error {
	if c.tvv == nil {
		return nil
	}
	mode := tv.ModeRestructure
	if pass.sem == semStructural {
		mode = tv.ModeStructural
	}
	sp := c.cfg.Trace.Span("tv."+pass.name, obs.A("mode", modeName(mode)))
	before := c.tvv.Stats
	start := time.Now()
	diags := c.tvv.ValidatePass(pass.name, c.p, mode)
	elapsed := time.Since(start)
	sp.End()

	reg := c.cfg.Metrics
	reg.Histogram(obs.MTVValidateNS).Observe(elapsed.Nanoseconds())
	reg.Counter(obs.MTVPassesValidated).Add(1)
	reg.Counter(obs.MTVOracleRuns).Add(int64(c.tvv.Stats.OracleRuns - before.OracleRuns))
	if len(diags) == 0 {
		return nil
	}
	reg.Counter(obs.MTVViolations).Add(int64(analysis.ErrorCount(diags)))
	for i := range diags {
		diags[i].Pass = pass.name
	}
	fn := "main"
	if e := analysis.FirstError(diags); e != nil && e.Func != "" {
		fn = e.Func
	}
	var after string
	if f := c.p.Funcs[fn]; f != nil {
		after = f.String()
	}
	return &PassViolation{
		Pass:   pass.name,
		Func:   fn,
		Diags:  diags,
		Before: c.snaps[fn],
		After:  after,
	}
}

func modeName(m tv.Mode) string {
	if m == tv.ModeStructural {
		return "structural"
	}
	return "restructure"
}
