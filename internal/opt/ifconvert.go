package opt

import "csspgo/internal/ir"

// IfConvertResult reports conversions performed and ones a probe barrier
// prevented.
type IfConvertResult struct {
	Converted int
	Blocked   int
}

// IfConvert flattens small diamonds (branch → two tiny pure arms → join)
// into straight-line code with select instructions, removing a conditional
// branch. This is a code-merge optimization:
//
//   - BarrierStrong (instrumentation): any probe/counter in an arm blocks
//     the conversion — counters must keep counting their own block.
//   - BarrierWeak (pseudo-instrumentation, production tuning): the paper's
//     fine-tuned if-convert proceeds; arm block probes are discarded, a
//     deliberate sliver of profile-accuracy loss in exchange for zero
//     run-time overhead.
//   - BarrierNone: proceeds.
//
// maxArmInstrs bounds each arm's real instruction count.
// ifConvertPass collapses diamonds to selects, merging arm weights.
var ifConvertPass = registerPass("if-convert", flowPerturbs, semRestructures)

func IfConvert(f *ir.Function, barrier BarrierStrength, maxArmInstrs int) IfConvertResult {
	var res IfConvertResult
	for {
		converted := false
		f.RebuildCFG()
		for _, a := range f.Blocks {
			if a.Term.Kind != ir.TermBranch {
				continue
			}
			t, fb := a.Term.Succs[0], a.Term.Succs[1]
			if t == fb || t == f.Entry() || fb == f.Entry() {
				continue
			}
			join := diamondJoin(t, fb)
			if join == nil || len(t.Preds) != 1 || len(fb.Preds) != 1 {
				continue
			}
			tOK, tProbes := armConvertible(t, maxArmInstrs)
			fOK, fProbes := armConvertible(fb, maxArmInstrs)
			if !tOK || !fOK {
				continue
			}
			if (tProbes || fProbes) && barrier == BarrierStrong {
				res.Blocked++
				continue
			}
			convertDiamond(f, a, t, fb, join)
			res.Converted++
			converted = true
			break
		}
		if !converted {
			return res
		}
	}
}

// diamondJoin returns the common single successor of both arms, or nil.
func diamondJoin(t, f *ir.Block) *ir.Block {
	if t.Term.Kind != ir.TermJump || f.Term.Kind != ir.TermJump {
		return nil
	}
	if t.Term.Succs[0] != f.Term.Succs[0] {
		return nil
	}
	return t.Term.Succs[0]
}

// armConvertible reports whether the block contains only pure register
// writes (plus probes/counters, reported separately).
func armConvertible(b *ir.Block, max int) (ok, hasProbes bool) {
	real := 0
	for i := range b.Instrs {
		switch b.Instrs[i].Op {
		case ir.OpProbe, ir.OpCounter:
			hasProbes = true
		case ir.OpConst, ir.OpBin, ir.OpNot, ir.OpNeg, ir.OpMove, ir.OpSelect:
			real++
		default:
			return false, hasProbes
		}
	}
	return real <= max, hasProbes
}

// convertDiamond rewrites A: br cond {T, F} → J into straight-line code:
// both arms' computations run into renamed temporaries, then selects pick
// per destination register.
func convertDiamond(f *ir.Function, a, t, fb, join *ir.Block) {
	cond := a.Term.Cond
	// Rename arm defs into fresh registers, tracking final value per dest.
	emitArm := func(src *ir.Block) map[ir.Reg]ir.Reg {
		rename := map[ir.Reg]ir.Reg{}
		final := map[ir.Reg]ir.Reg{}
		for i := range src.Instrs {
			in := src.Instrs[i].Clone()
			if in.Op == ir.OpProbe || in.Op == ir.OpCounter {
				continue // weak barrier: arm probes dropped
			}
			// Remap uses of earlier arm defs.
			remap := func(r ir.Reg) ir.Reg {
				if nr, ok := rename[r]; ok {
					return nr
				}
				return r
			}
			in.A = remapIf(in.A, remap)
			in.B = remapIf(in.B, remap)
			in.C = remapIf(in.C, remap)
			in.Index = remapIf(in.Index, remap)
			d := def(&in)
			if d >= 0 {
				nd := f.NewReg()
				rename[d] = nd
				final[d] = nd
				in.Dst = nd
			}
			a.Instrs = append(a.Instrs, in)
		}
		return final
	}
	tFinal := emitArm(t)
	fFinal := emitArm(fb)

	// Selects per destination register (sorted for determinism).
	var dests []ir.Reg
	seen := map[ir.Reg]bool{}
	for d := range tFinal {
		if !seen[d] {
			seen[d] = true
			dests = append(dests, d)
		}
	}
	for d := range fFinal {
		if !seen[d] {
			seen[d] = true
			dests = append(dests, d)
		}
	}
	for i := 1; i < len(dests); i++ {
		for j := i; j > 0 && dests[j] < dests[j-1]; j-- {
			dests[j], dests[j-1] = dests[j-1], dests[j]
		}
	}
	for _, d := range dests {
		tv, ok := tFinal[d]
		if !ok {
			tv = d // arm leaves the old value
		}
		fv, ok := fFinal[d]
		if !ok {
			fv = d
		}
		a.Instrs = append(a.Instrs, ir.Instr{
			Op: ir.OpSelect, Dst: d, A: cond, B: tv, C: fv, Loc: a.Term.Loc,
		})
	}
	a.Term = ir.Terminator{Kind: ir.TermJump, Succs: []*ir.Block{join}, Loc: a.Term.Loc}
	if a.HasWeight {
		a.Term.EdgeW = []uint64{a.Weight}
	}
	t.Instrs, fb.Instrs = nil, nil
	t.Term = ir.Terminator{Kind: ir.TermReturn, Val: ir.NoReg}
	fb.Term = ir.Terminator{Kind: ir.TermReturn, Val: ir.NoReg}
	removeBlock(f, t)
	removeBlock(f, fb)
	f.RebuildCFG()
}

func remapIf(r ir.Reg, remap func(ir.Reg) ir.Reg) ir.Reg {
	if r == ir.NoReg {
		return r
	}
	return remap(r)
}
