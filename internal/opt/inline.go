package opt

import (
	"fmt"

	"csspgo/internal/ir"
	"csspgo/internal/profdata"
)

// summarySize returns the ThinLTO summary (pre-optimization) size.
func summarySize(f *ir.Function) int {
	if f.SummarySize > 0 {
		return f.SummarySize
	}
	return realSize(f)
}

// realSize counts a function's non-probe instructions (the inliners' cost
// proxy on IR).
func realSize(f *ir.Function) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op != ir.OpProbe {
				n++
			}
		}
	}
	return n
}

// InlineCall inlines the call at (b, idx) in caller. ctxProfile, when
// non-nil, annotates the inlined body with its context-sensitive profile;
// otherwise, when the caller/callee carry weights, the inlined body is
// scaled by callsiteWeight/calleeEntryCount — the inaccurate
// context-insensitive scaling of the paper's Fig. 3a.
//
// Cloned instructions get their debug locations re-parented (inlined-at
// chains) and cloned probes get their inline contexts extended through the
// call site's probe — exactly the bookkeeping DWARF and pseudo-probe
// metadata need for later correlation.
func InlineCall(p *ir.Program, caller *ir.Function, b *ir.Block, idx int, ctxProfile *profdata.FunctionProfile) error {
	call := b.Instrs[idx]
	if call.Op != ir.OpCall {
		return fmt.Errorf("inline: not a call")
	}
	callee := p.Funcs[call.Callee]
	if callee == nil {
		return fmt.Errorf("inline: unknown callee %q", call.Callee)
	}
	if callee == caller {
		return fmt.Errorf("inline: direct recursion")
	}

	// Clone callee body with registers shifted into the caller's space.
	regBase := ir.Reg(caller.NRegs)
	caller.NRegs += callee.NRegs
	bmap := ir.CloneRegion(caller, callee.Blocks, func(r ir.Reg) ir.Reg { return r + regBase })
	entryClone := bmap[callee.Entry()]

	// Split b: everything after the call moves to the join block.
	join := caller.NewBlock()
	join.Instrs = append(join.Instrs, b.Instrs[idx+1:]...)
	join.Term = b.Term
	join.Weight, join.HasWeight = b.Weight, b.HasWeight
	b.Instrs = b.Instrs[:idx]
	b.Term = ir.Terminator{Kind: ir.TermJump, Succs: []*ir.Block{entryClone}, Loc: call.Loc}
	if b.HasWeight {
		b.Term.EdgeW = []uint64{b.Weight}
	}

	// Argument moves.
	for i, arg := range call.Args {
		if i >= len(callee.Params) {
			break
		}
		b.Instrs = append(b.Instrs, ir.Instr{
			Op: ir.OpMove, Dst: regBase + ir.Reg(i), A: arg, Loc: call.Loc,
		})
	}

	// Rewire cloned returns to the join, forwarding the return value.
	for _, ob := range callee.Blocks {
		nb := bmap[ob]
		if nb.Term.Kind != ir.TermReturn {
			continue
		}
		if call.Dst != ir.NoReg {
			if nb.Term.Val != ir.NoReg {
				nb.Instrs = append(nb.Instrs, ir.Instr{
					Op: ir.OpMove, Dst: call.Dst, A: nb.Term.Val, Loc: call.Loc,
				})
			} else {
				nb.Instrs = append(nb.Instrs, ir.Instr{
					Op: ir.OpConst, Dst: call.Dst, Value: 0, Loc: call.Loc,
				})
			}
		}
		nb.Term = ir.Terminator{Kind: ir.TermJump, Succs: []*ir.Block{join}, Loc: call.Loc}
	}

	// Re-parent debug locations and probe inline contexts.
	var probeSite *ir.ProbeSite
	if call.Probe != nil {
		probeSite = &ir.ProbeSite{Func: call.Probe.Func, CallID: call.Probe.ID, Parent: call.Probe.InlinedAt}
	}
	for _, ob := range callee.Blocks {
		nb := bmap[ob]
		for i := range nb.Instrs {
			in := &nb.Instrs[i]
			in.Loc = reparentLoc(in.Loc, call.Loc)
			if in.Probe != nil && probeSite != nil {
				in.Probe = reparentProbe(in.Probe, probeSite)
			}
		}
		nb.Term.Loc = reparentLoc(nb.Term.Loc, call.Loc)
	}

	// Profile maintenance for the inlined body.
	switch {
	case ctxProfile != nil:
		annotateClonedFromContext(callee, bmap, ctxProfile)
	case b.HasWeight && callee.HasProfile && callee.EntryCount > 0:
		for _, ob := range callee.Blocks {
			nb := bmap[ob]
			if ob.HasWeight {
				nb.Weight = ob.Weight * b.Weight / callee.EntryCount
				nb.HasWeight = true
				for wi := range nb.Term.EdgeW {
					nb.Term.EdgeW[wi] = nb.Term.EdgeW[wi] * b.Weight / callee.EntryCount
				}
			}
		}
	}

	caller.RebuildCFG()
	return nil
}

// annotateClonedFromContext weights the freshly inlined blocks from a
// context-sensitive profile keyed by the callee's own probe IDs.
func annotateClonedFromContext(callee *ir.Function, bmap map[*ir.Block]*ir.Block, cp *profdata.FunctionProfile) {
	for _, ob := range callee.Blocks {
		nb := bmap[ob]
		// The clone's block probe still carries the callee's probe ID.
		for i := range nb.Instrs {
			in := &nb.Instrs[i]
			if in.Op == ir.OpProbe && in.Probe.Kind == ir.ProbeBlock {
				nb.Weight = cp.BodyAt(profdata.LocKey{ID: in.Probe.ID})
				nb.HasWeight = true
				break
			}
		}
	}
}

// reparentLoc deep-copies the location chain, attaching callLoc as the
// outermost inlined-at parent. A nil location inherits the call site's.
func reparentLoc(l, callLoc *ir.Loc) *ir.Loc {
	if callLoc == nil {
		return l
	}
	if l == nil {
		return callLoc
	}
	out := *l
	if l.Parent != nil {
		out.Parent = reparentLoc(l.Parent, callLoc)
	} else {
		out.Parent = callLoc
	}
	return &out
}

// reparentProbe deep-copies the probe, extending its inline chain with the
// call site.
func reparentProbe(p *ir.Probe, site *ir.ProbeSite) *ir.Probe {
	out := *p
	out.InlinedAt = appendSite(p.InlinedAt, site)
	return &out
}

func appendSite(chain, site *ir.ProbeSite) *ir.ProbeSite {
	if chain == nil {
		return site
	}
	out := *chain
	out.Parent = appendSite(chain.Parent, site)
	return &out
}

// BottomUpInline is the main (CGSCC-order) inliner: functions are visited
// callees-first; call sites are inlined when the callee is small enough,
// with a larger budget at profile-hot call sites and a token budget for
// cold ones. ThinLTO partitioning is respected: cross-module callees
// inline only when small enough to have been imported by summary.
// inlinePass grafts scaled callee CFGs into callers.
var inlinePass = registerPass("inline", flowPerturbs, semRestructures)

func BottomUpInline(p *ir.Program, params InlineParams, profiled bool) int {
	cg := ir.BuildCallGraph(p)
	inlines := 0
	for _, name := range cg.BottomUpOrder() {
		f := p.Funcs[name]
		if f == nil {
			continue
		}
		inlines += inlineInto(p, cg, f, params, profiled)
	}
	return inlines
}

func inlineInto(p *ir.Program, cg *ir.CallGraph, f *ir.Function, params InlineParams, profiled bool) int {
	inlines := 0
	budgetSize := realSize(f)
	for pass := 0; pass < 4; pass++ {
		changed := false
		for _, b := range f.Blocks {
			for i := 0; i < len(b.Instrs); i++ {
				in := &b.Instrs[i]
				if in.Op != ir.OpCall || in.TailCall {
					continue
				}
				callee := p.Funcs[in.Callee]
				if callee == nil || callee == f || cg.InSameSCC(f.Name, in.Callee) {
					continue
				}
				size := realSize(callee)
				if !shouldInline(f, b, callee, size, params, profiled) {
					continue
				}
				if budgetSize+size > params.GrowthCap {
					continue
				}
				if err := InlineCall(p, f, b, i, nil); err != nil {
					continue
				}
				budgetSize += size
				inlines++
				changed = true
				break // b's instruction list changed; rescan function
			}
			if changed {
				break
			}
		}
		if !changed {
			break
		}
	}
	return inlines
}

func shouldInline(caller *ir.Function, site *ir.Block, callee *ir.Function, size int, params InlineParams, profiled bool) bool {
	if size <= params.TinyThreshold {
		return true
	}
	// ThinLTO: cross-module bodies are only available via summary import;
	// importability is judged on the pre-optimization summary size.
	if callee.Module != caller.Module && summarySize(callee) > params.ImportThreshold {
		return false
	}
	if !profiled || !site.HasWeight || !caller.HasProfile {
		return size <= params.SizeThreshold
	}
	// Profile-guided: hot call sites get the big threshold, cold ones none.
	hot := site.Weight*1000 >= caller.EntryCount*uint64(params.HotCallsiteFraction)
	if site.Weight == 0 {
		return false
	}
	if hot {
		return size <= params.HotThreshold
	}
	return size <= params.SizeThreshold
}
