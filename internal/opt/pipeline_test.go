package opt

import (
	"testing"

	"csspgo/internal/codegen"
	"csspgo/internal/ir"
	"csspgo/internal/probe"
	"csspgo/internal/sampling"
	"csspgo/internal/sim"
)

// Programs exercising every language/optimizer feature; each returns a
// value that depends on all interesting control flow.
var semanticPrograms = []struct {
	name string
	src  string
	args []int64
}{
	{"arith-mix", `
global acc;
func main(a) {
	acc = 0;
	var x = compute(a, a + 3);
	var y = compute(a * 2, a - 7);
	return x + y * 3 + acc;
}
func compute(p, q) {
	var r = 0;
	if (p > q && p % 3 != 0) { r = p - q; } else { r = q - p + misc(p); }
	acc = acc + r;
	return r;
}
func misc(v) { return v % 13 + 2; }
`, []int64{0, 1, 5, 17, 40, 99, -3}},
	{"loops", `
func main(n) {
	var total = 0;
	for (var i = 0; i < n; i = i + 1) {
		var inv = n * 3 + 7;
		total = total + inv % 11 + body(i);
	}
	var j = n;
	while (j > 0) { total = total - 1; j = j - 2; }
	return total;
}
func body(i) {
	var s = 0;
	switch (i % 4) {
	case 0: s = 10;
	case 1: s = i * 2;
	case 2: s = 0 - i;
	default: s = 1;
	}
	return s;
}
`, []int64{0, 1, 2, 9, 33, 100}},
	{"recursion-tails", `
func main(n) { return fib(n % 15) + count(n, 0); }
func fib(n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func count(n, acc) {
	if (n <= 0) { return acc; }
	return count(n - 1, acc + n % 7);
}
`, []int64{0, 3, 11, 25}},
	{"globals-arrays", `
global tab[8] = 3, 1, 4, 1, 5, 9, 2, 6;
global hits;
func main(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		tab[i % 8] = tab[i % 8] + 1;
		s = s + lookup(i);
	}
	return s + hits;
}
func lookup(i) { hits = hits + 1; return tab[(i * 5) % 8]; }
`, []int64{0, 4, 16, 64}},
	{"short-circuit", `
global log;
func main(a) {
	var r = 0;
	if (probe1(a) > 0 && probe2(a) > 1 || probe1(a + 1) == 0) { r = 1; }
	if (!(a > 5) || probe2(a - 5) % 2 == 0) { r = r + 2; }
	return r * 100 + log;
}
func probe1(x) { log = log + 1; return x % 3; }
func probe2(x) { log = log + 10; return x % 5; }
`, []int64{0, 1, 2, 3, 6, 8, 14}},
}

// runProgram compiles with opts and executes main over args, returning the
// result vector (globals reset between runs for reproducibility).
func runProgram(t *testing.T, p *ir.Program, args []int64) []int64 {
	t.Helper()
	bin, err := codegen.Lower(p, codegen.Options{})
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	out := make([]int64, 0, len(args))
	m := sim.New(bin, sim.DefaultCostParams(), sim.PMUConfig{})
	for _, a := range args {
		m.Reset()
		v, err := m.Run(a)
		if err != nil {
			t.Fatalf("run(%d): %v", a, err)
		}
		out = append(out, v)
	}
	return out
}

func equal64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPipelinePreservesSemanticsTraining(t *testing.T) {
	for _, prog := range semanticPrograms {
		t.Run(prog.name, func(t *testing.T) {
			ref := runProgram(t, lower(t, prog.src, false), prog.args)

			for _, probes := range []bool{false, true} {
				p := lower(t, prog.src, probes)
				cfg := TrainingConfig()
				if probes {
					cfg.Barrier = BarrierWeak
				}
				if _, err := Optimize(p, cfg); err != nil {
					t.Fatalf("optimize(probes=%v): %v", probes, err)
				}
				got := runProgram(t, p, prog.args)
				if !equal64(ref, got) {
					t.Fatalf("probes=%v: output changed:\nref %v\ngot %v\n%s", probes, ref, got, p)
				}
			}
		})
	}
}

// profileFor builds a real CSSPGO profile by profiling a training build.
func profileFor(t *testing.T, src string, trainArgs []int64) ( /*cs*/ interface{}, interface{}) {
	t.Helper()
	return nil, nil
}

func TestPipelinePreservesSemanticsPGO(t *testing.T) {
	for _, prog := range semanticPrograms {
		t.Run(prog.name, func(t *testing.T) {
			ref := runProgram(t, lower(t, prog.src, false), prog.args)

			// Training build with probes, profiled.
			train := lower(t, prog.src, true)
			tcfg := TrainingConfig()
			tcfg.Barrier = BarrierWeak
			if _, err := Optimize(train, tcfg); err != nil {
				t.Fatal(err)
			}
			bin, err := codegen.Lower(train, codegen.Options{})
			if err != nil {
				t.Fatal(err)
			}
			m := sim.New(bin, sim.DefaultCostParams(), sim.DefaultPMUConfig(16))
			for _, a := range prog.args {
				if _, err := m.Run(a); err != nil {
					t.Fatal(err)
				}
				if _, err := m.Run(a + 50); err != nil {
					t.Fatal(err)
				}
			}
			csProf, _ := sampling.GenerateCSSPGO(bin, m.Samples(), sampling.DefaultCSSPGOOptions())
			flatProf := sampling.GenerateProbeProfile(bin, m.Samples())
			lineProf := sampling.GenerateAutoFDO(bin, m.Samples())

			type variant struct {
				name   string
				probes bool
				cfg    *Config
			}
			variants := []variant{
				{"autofdo", false, &Config{
					Profile: lineProf, Inference: true, Inline: DefaultInlineParams(),
					UnrollFactor: 4, EnableTCE: true, Layout: true, Split: true,
				}},
				{"probeonly", true, &Config{
					Profile: flatProf, Barrier: BarrierWeak, Inference: true,
					Inline: DefaultInlineParams(), UnrollFactor: 4, EnableTCE: true,
					Layout: true, Split: true,
				}},
				{"csspgo", true, &Config{
					Profile: csProf, Barrier: BarrierWeak, Inference: true,
					Inline: DefaultInlineParams(), UnrollFactor: 4, EnableTCE: true,
					Layout: true, Split: true, CSHotContextThreshold: 2,
				}},
				{"instr", true, &Config{
					Profile: flatProf, Barrier: BarrierStrong, Inference: true,
					Inline: DefaultInlineParams(), UnrollFactor: 4, EnableTCE: true,
					Layout: true, Split: true,
				}},
			}
			for _, v := range variants {
				p := lower(t, prog.src, v.probes)
				if _, err := Optimize(p, v.cfg); err != nil {
					t.Fatalf("%s: optimize: %v", v.name, err)
				}
				got := runProgram(t, p, prog.args)
				if !equal64(ref, got) {
					t.Fatalf("%s: output changed:\nref %v\ngot %v\n%s", v.name, ref, got, p)
				}
			}
		})
	}
}

func TestPipelineCSSPGOInlinesHotContext(t *testing.T) {
	src := `
func main(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		s = s + hotpath(i);
		if (i % 64 == 0) { s = s + coldpath(i); }
	}
	return s;
}
func hotpath(x) { return shared(x, 1); }
func coldpath(x) { return shared(x, 2); }
func shared(x, mode) {
	if (mode == 1) { return x * 3; }
	var s = 0;
	for (var j = 0; j < 10; j = j + 1) { s = s + x % 7; }
	return s;
}
`
	// Train.
	train := lower(t, src, true)
	if _, err := Optimize(train, TrainingConfig()); err != nil {
		t.Fatal(err)
	}
	bin, err := codegen.Lower(train, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(bin, sim.DefaultCostParams(), sim.DefaultPMUConfig(16))
	for r := 0; r < 10; r++ {
		if _, err := m.Run(500); err != nil {
			t.Fatal(err)
		}
	}
	prof, _ := sampling.GenerateCSSPGO(bin, m.Samples(), sampling.DefaultCSSPGOOptions())

	p := lower(t, src, true)
	cfg := &Config{
		Profile: prof, Barrier: BarrierWeak, Inference: true,
		Inline: DefaultInlineParams(), EnableTCE: false,
		Layout: true, Split: true, CSHotContextThreshold: 5,
	}
	st, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.AnnotatedFuncs == 0 {
		t.Fatalf("nothing annotated: %+v", st)
	}
	if st.SampleInlines == 0 {
		t.Fatalf("CS sample inliner inlined nothing: %+v", st)
	}
	// Correctness.
	ref := runProgram(t, lower(t, src, false), []int64{100})
	got := runProgram(t, p, []int64{100})
	if !equal64(ref, got) {
		t.Fatalf("CS inlining broke the program: %v vs %v", ref, got)
	}
}

func TestPipelineProducesFasterCode(t *testing.T) {
	// PGO with a real profile should beat the training build on eval runs.
	src := semanticPrograms[1].src // loops
	train := lower(t, src, true)
	if _, err := Optimize(train, TrainingConfig()); err != nil {
		t.Fatal(err)
	}
	bin, err := codegen.Lower(train, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(bin, sim.DefaultCostParams(), sim.DefaultPMUConfig(16))
	for r := 0; r < 20; r++ {
		if _, err := m.Run(200); err != nil {
			t.Fatal(err)
		}
	}
	prof, _ := sampling.GenerateCSSPGO(bin, m.Samples(), sampling.DefaultCSSPGOOptions())

	cycles := func(p *ir.Program) uint64 {
		b, err := codegen.Lower(p, codegen.Options{})
		if err != nil {
			t.Fatal(err)
		}
		mm := sim.New(b, sim.DefaultCostParams(), sim.PMUConfig{})
		for r := 0; r < 20; r++ {
			if _, err := mm.Run(200); err != nil {
				t.Fatal(err)
			}
		}
		return mm.Stats().Cycles
	}

	base := cycles(train)
	pgo := lower(t, src, true)
	if _, err := Optimize(pgo, &Config{
		Profile: prof, Barrier: BarrierWeak, Inference: true,
		Inline: DefaultInlineParams(), UnrollFactor: 4, EnableTCE: true,
		Layout: true, Split: true, CSHotContextThreshold: 2,
	}); err != nil {
		t.Fatal(err)
	}
	opt := cycles(pgo)
	if opt >= base {
		t.Fatalf("PGO build not faster: %d vs %d cycles", opt, base)
	}
}

func TestOptimizeKeepsProbeInvariants(t *testing.T) {
	p := lower(t, semanticPrograms[0].src, true)
	cfg := TrainingConfig()
	cfg.Barrier = BarrierWeak
	if _, err := Optimize(p, cfg); err != nil {
		t.Fatal(err)
	}
	// After optimization every remaining probe still carries a payload and
	// call probes still sit on calls.
	for _, f := range p.Functions() {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op == ir.OpProbe && in.Probe == nil {
					t.Fatalf("%s: probe without payload", f.Name)
				}
			}
		}
	}
	_ = probe.Verify // (full head-probe invariant no longer holds post-opt)
}
