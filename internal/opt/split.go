package opt

import "csspgo/internal/ir"

// Split marks cold blocks of profiled functions for the cold section at
// the end of the text segment, improving i-cache density of the hot path
// (the function-splitting optimization the paper enables for all PGO
// variants). A block is cold when its weight falls below 0.2% of the
// function's entry count — zero-sampled blocks always qualify, and exact
// (instrumentation) profiles split genuinely rare blocks the same way.
// Returns blocks marked.
func Split(f *ir.Function) int {
	anyHot := false
	for _, b := range f.Blocks {
		if b.HasWeight && b.Weight > 0 {
			anyHot = true
			break
		}
	}
	if !anyHot {
		return 0
	}
	n := 0
	for _, b := range f.Blocks {
		if b == f.Entry() || !b.HasWeight || b.Cold {
			continue
		}
		cold := b.Weight == 0 || f.EntryCount > 0 && b.Weight*500 < f.EntryCount
		if !cold {
			continue
		}
		b.Cold = true
		n++
	}
	return n
}

// SplitProgram splits every function; returns total blocks marked cold.
// splitPass only re-sections and reorders blocks; weights are untouched.
var splitPass = registerPass("split", flowPreserves, semStructural)

func SplitProgram(p *ir.Program) int {
	n := 0
	for _, f := range p.Functions() {
		n += Split(f)
	}
	return n
}
