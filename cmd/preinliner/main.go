// Command preinliner runs the offline context-sensitive pre-inliner
// (paper Algorithms 2 and 3) over a context-sensitive profile: it trims
// cold contexts, extracts per-context function sizes from the profiled
// binary, makes global top-down inline decisions, adjusts the profile
// accordingly, and persists the decisions (ShouldInline markers) for the
// compiler to honor.
//
// Usage:
//
//	preinliner -bin app.bin -profile app.prof -o app.preinlined.prof [-trim N]
package main

import (
	"flag"
	"fmt"
	"os"

	"csspgo/internal/machine"
	"csspgo/internal/preinline"
	"csspgo/internal/profdata"
)

func main() {
	binPath := flag.String("bin", "app.bin", "profiled binary (function-size source)")
	profPath := flag.String("profile", "app.prof", "context-sensitive profile (text)")
	out := flag.String("o", "app.preinlined.prof", "output profile path")
	trim := flag.Uint64("trim", 0, "cold-context trim threshold (0 = auto: 0.05% of samples)")
	flag.Parse()

	if err := run(*binPath, *profPath, *out, *trim); err != nil {
		fmt.Fprintf(os.Stderr, "preinliner: %v\n", err)
		os.Exit(1)
	}
}

func run(binPath, profPath, out string, trim uint64) error {
	f, err := os.Open(binPath)
	if err != nil {
		return err
	}
	bin, err := machine.ReadProg(f)
	f.Close()
	if err != nil {
		return err
	}
	data, err := os.ReadFile(profPath)
	if err != nil {
		return err
	}
	prof, err := profdata.DecodeAny(data)
	if err != nil {
		return err
	}
	if !prof.CS {
		return fmt.Errorf("%s is not a context-sensitive profile", profPath)
	}
	if trim == 0 {
		trim = prof.TotalSamples() / 2000
		if trim < 2 {
			trim = 2
		}
	}
	trimmed := prof.TrimColdContexts(trim)
	sizes := preinline.ExtractSizes(bin)
	res := preinline.Run(prof, sizes, preinline.DeriveParams(prof))
	if err := os.WriteFile(out, []byte(profdata.EncodeToString(prof)), 0o644); err != nil {
		return err
	}
	fmt.Printf("trimmed %d cold contexts; marked %d contexts for inlining, promoted %d; wrote %s\n",
		trimmed, res.Inlined, res.Promoted, out)
	return nil
}
