package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"csspgo/internal/analysis"
	"csspgo/internal/drift"
	"csspgo/internal/fleet"
	"csspgo/internal/obs"
)

// cmdFleet is the fleet-scale aggregation control plane: it polls N
// `csspgo serve` instances (the positional profile URLs), merges their
// profiles under circuit-breaker / freshness / quota policy, gates the
// merged candidate against the last-good artifact (context-overlap floor
// plus the `report -diff` manifest gate) and atomically persists each
// promoted generation. A candidate that fails the gate is rolled back:
// the last-good file is left byte-for-byte untouched and the command
// exits 2 (the same regression exit code as `report -diff`).
//
// -inject poison-counts is the control plane's self-test: the merged
// candidate's counts are adversarially poisoned before gating, and the
// gate MUST reject it — if the poisoned candidate is promoted, the command
// fails loudly with exit 1, because a promotion gate that cannot catch a
// poisoned profile is itself broken.
func cmdFleet(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	out := fs.String("o", "fleet.prof", "last-good merged profile path (adopted at startup when present)")
	rounds := fs.Int("rounds", 1, "aggregation rounds (0 = continuous until interrupted)")
	interval := fs.Duration("interval", 30*time.Second, "delay between rounds (continuous mode)")
	timeout := fs.Duration("timeout", 2*time.Second, "per-source fetch deadline")
	retries := fs.Int("retries", 2, "per-source fetch retry budget")
	quota := fs.Uint64("quota", 0, "per-source sample quota per round (0 = unlimited)")
	freshness := fs.Duration("freshness", 0, "drop sources whose profile generation stagnates longer than this (0 = off)")
	minOverlap := fs.Float64("min-overlap", 0.5, "promotion-gate context-overlap floor against last-good")
	threshold := fs.Float64("threshold", 100*obs.DefaultRegressionThreshold, "manifest regression threshold in percent")
	weights := fs.String("weights", "", "comma-separated per-source merge weights (default 1 each)")
	inject := fs.String("inject", "", "fault self-test: \"poison-counts\" poisons the candidate; the gate must reject it")
	reportPath := fs.String("report", "", "write a machine-readable run manifest (JSON)")
	seed := fs.Uint64("seed", 1, "retry-jitter seed")
	tracePath := fs.String("trace", "", "write the aggregator's Chrome trace-event JSON (stitchable with serve-side traces)")
	journalPath := fs.String("journal", "", "write the normalized event journal (JSONL, csspgo-events/v1)")
	timeseriesPath := fs.String("timeseries", "", "write the normalized time-series store (JSON, csspgo-timeseries/v1)")
	statusAddr := fs.String("status-addr", "", "serve the fleet status surface (/healthz /metrics /timeseries /events /dashboard) on this address")
	_ = fs.Parse(args)

	if fs.NArg() == 0 {
		return fmt.Errorf("fleet: no source URLs (expected http://host:port/profiles/<name>...)")
	}
	if *inject != "" && *inject != "poison-counts" {
		return fmt.Errorf("fleet: unknown -inject %q (have: poison-counts)", *inject)
	}

	sources := make([]*fleet.Source, fs.NArg())
	ws, err := parseWeights(*weights, fs.NArg())
	if err != nil {
		return err
	}
	for i, url := range fs.Args() {
		sources[i] = &fleet.Source{Name: fmt.Sprintf("src%d", i), URL: url, Weight: ws[i]}
	}

	obsrv := obs.NewTrace()
	// Deterministic trace ID (derived from the jitter seed): two identical
	// runs mint identical span IDs, so stitched traces and journals are
	// byte-comparable across reruns.
	obsrv.SetTraceID(obs.DeriveTraceID("fleet", strconv.FormatUint(*seed, 10)))
	reg := obs.NewRegistry()
	journal := obs.NewJournal()
	series := obs.NewTimeSeries(0)
	cfg := fleet.Config{
		Fetch: fleet.FetchConfig{
			Timeout:    *timeout,
			Retries:    *retries,
			JitterSeed: *seed,
		},
		Quota:     *quota,
		Freshness: *freshness,
		Trace:     obsrv.Root(),
		Journal:   journal,
	}
	agg := fleet.NewAggregator(sources, cfg, reg)
	prom := fleet.NewPromoter(fleet.PromoteConfig{
		MinOverlap: *minOverlap,
		Threshold:  *threshold / 100,
		Journal:    journal,
	}, reg)

	// Adopt an existing last-good artifact byte-for-byte, so a rollback in
	// this run can restore exactly what the previous run persisted.
	if data, err := os.ReadFile(*out); err == nil {
		if err := prom.AdoptEncoded(data); err != nil {
			return fmt.Errorf("fleet: %s: %w", *out, err)
		}
		fmt.Printf("adopted last-good %s (%d bytes)\n", *out, len(data))
	} else if !os.IsNotExist(err) {
		return err
	}
	if *inject != "" && prom.LastGood() == nil {
		return fmt.Errorf("fleet: -inject needs an existing last-good artifact at %s (the first promotion is ungated)", *out)
	}

	// Self-lint the metric namespace before serving numbers from it.
	var lintErrs int
	for _, d := range analysis.CheckMetricRegistry(reg) {
		fmt.Fprintf(os.Stderr, "fleet: lint: %s\n", d)
		if d.Sev == analysis.SevError {
			lintErrs++
		}
	}
	if lintErrs > 0 {
		return fmt.Errorf("fleet: %d metric lint error(s)", lintErrs)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The fleet's own observability surface, mirroring the serve daemon's.
	status := (*fleet.StatusServer)(nil)
	if *statusAddr != "" {
		status = fleet.NewStatusServer(reg, journal, series)
		status.SetAggregator(agg)
		l, err := net.Listen("tcp", *statusAddr)
		if err != nil {
			return err
		}
		fmt.Printf("fleet status on http://%s\n", l.Addr())
		for _, ep := range status.Endpoints() {
			fmt.Printf("  http://%s%s\n", l.Addr(), ep)
		}
		statusDone := make(chan error, 1)
		go func() { statusDone <- status.Serve(ctx, l) }()
		defer func() {
			stop() // release the status server if we exit early
			<-statusDone
		}()
	}

	// observe publishes one finished round to the time-series store and the
	// status surface: stats first so obs.timeseries.* gauges land in the same
	// sample, then one point per cataloged metric under a single snapshot
	// epoch.
	observe := func(round *fleet.Round, promoted, gated bool) {
		series.PublishStats(reg)
		series.Sample(round.Num, reg.Snapshot())
		var gen uint64
		if lg := prom.LastGood(); lg != nil {
			gen = lg.Generation
		}
		status.ObserveRound(round.Num, round.Healthy, gen, fleet.OutcomeString(round, promoted, gated))
	}

	oneShot := *rounds == 1
	var gateFailed bool
	for n := 0; (*rounds == 0 || n < *rounds) && ctx.Err() == nil; n++ {
		if n > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(*interval):
			}
			if ctx.Err() != nil {
				break
			}
		}
		round := agg.RoundOnce(ctx)
		fmt.Printf("round %d: merged %d/%d sources\n%s", n+1, round.Healthy, len(sources), round.Summary())
		// Promotion events emitted this round inherit the round span's trace
		// context, so journal entries link back into the stitched trace.
		prom.BeginRound(round.Num, round.Ctx)
		if round.Merged == nil {
			observe(round, false, false)
			if oneShot {
				return fmt.Errorf("fleet: no source could be merged")
			}
			fmt.Fprintln(os.Stderr, "fleet: no source merged this round; last-good stays current")
			continue
		}

		cand := round.Merged
		if *inject == "poison-counts" {
			cand = drift.PoisonCounts(cand)
			fmt.Println("injected poison-counts into the merged candidate")
		}
		art, res := prom.Promote(cand, nil)
		observe(round, art != nil, art == nil)
		if art == nil {
			gateFailed = true
			fmt.Printf("gate: %s\n", res)
			if res.Diff != "" {
				fmt.Print(res.Diff)
			}
			fmt.Printf("rolled back: %s retains generation %d\n", *out, prom.LastGood().Generation)
			continue
		}
		if *inject != "" {
			return fmt.Errorf("fleet: INJECTED POISON NOT CAUGHT: gate promoted a poisoned candidate (overlap %.4f)", res.Overlap)
		}
		if err := art.WriteFile(*out); err != nil {
			return fmt.Errorf("fleet: persist %s: %w", *out, err)
		}
		fmt.Printf("promoted generation %d (overlap %.4f, %d samples) -> %s\n",
			art.Generation, res.Overlap, art.Profile.TotalSamples(), *out)
	}

	// Journal hygiene before anything persists it: every event type this run
	// emitted must be cataloged (the same check `csspgo lint` runs statically).
	if diags := analysis.CheckEventNames(journal.TypesUsed()); len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "fleet: lint: %s\n", d)
		}
		return fmt.Errorf("fleet: %d event lint error(s)", len(diags))
	}
	if *journalPath != "" {
		// Normalized: trace/span IDs stripped, logical clocks kept — two
		// identical runs write byte-identical journals.
		journal.Normalize()
		if err := journal.WriteFile(*journalPath); err != nil {
			return err
		}
		fmt.Printf("wrote journal %s (%d events)\n", *journalPath, journal.Len())
	}
	if *timeseriesPath != "" {
		// Normalized: *_ns series zeroed (wall time is nondeterministic);
		// counts, gauges, and logical clocks survive byte-identically.
		series.Normalize()
		if err := series.WriteFile(*timeseriesPath); err != nil {
			return err
		}
		sn, pn, _ := series.Stats()
		fmt.Printf("wrote timeseries %s (%d series, %d points)\n", *timeseriesPath, sn, pn)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := obsrv.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote trace %s\n", *tracePath)
	}
	if *reportPath != "" {
		rep := obs.NewReport("csspgo fleet")
		rep.Config["sources"] = fs.NArg()
		rep.Config["rounds"] = *rounds
		rep.Config["min_overlap"] = fmt.Sprintf("%g", *minOverlap)
		rep.AddTrace(obsrv)
		rep.AddMetrics(reg)
		if err := rep.WriteFile(*reportPath); err != nil {
			return err
		}
		fmt.Printf("wrote report %s\n", *reportPath)
	}
	if gateFailed && oneShot {
		// The CI gate: a rejected promotion is exit 2 (same convention as
		// `report -diff`), distinct from operational errors (exit 1).
		fmt.Fprintln(os.Stderr, "fleet: promotion gate rejected the candidate; last-good rolled back")
		os.Exit(2)
	}
	return nil
}

// parseWeights expands the -weights list to one weight per source.
func parseWeights(s string, n int) ([]uint64, error) {
	ws := make([]uint64, n)
	for i := range ws {
		ws[i] = 1
	}
	if s == "" {
		return ws, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("fleet: %d weights for %d sources", len(parts), n)
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil || v == 0 {
			return nil, fmt.Errorf("fleet: bad weight %q (want positive integer)", p)
		}
		ws[i] = v
	}
	return ws, nil
}
