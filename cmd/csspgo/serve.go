package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"syscall"

	"csspgo/internal/analysis"
	"csspgo/internal/introspect"
	"csspgo/internal/obs"
	"csspgo/internal/pgo"
	"csspgo/internal/sampling"
	"csspgo/internal/source"
)

// cmdServe runs the continuous-profiling daemon: it profiles a workload
// once (FullCS pipeline: sample, unwind, trim, pre-inline), then serves the
// profile, its folded flamegraph export, the run manifest, and Prometheus
// metrics over HTTP. With -refresh it re-profiles on a timer and atomically
// swaps each fresh generation in, publishing profile-diff analytics
// (quality.context_overlap etc.) between consecutive generations.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8572", "listen address (use :0 for an ephemeral port)")
	workload := fs.String("workload", "", "serve a named synthetic workload instead of source files")
	scale := fs.Int("scale", 1, "workload request-stream scale (with -workload)")
	name := fs.String("name", "", "profile name under /profiles/ (default: workload name or \"app\")")
	refresh := fs.Duration("refresh", 0, "re-profile and swap on this interval (0 = serve one generation)")
	n := fs.Int("n", 60, "training request count (source-file mode)")
	seed := fs.Int64("seed", 1, "request generator seed (source-file mode)")
	bound := fs.Int64("bound", 1000, "request magnitude bound (source-file mode)")
	period := fs.Uint64("period", 797, "sampling period (taken branches)")
	workers := fs.Int("workers", 0, "profile-generation worker pool size (0 = GOMAXPROCS)")
	stream := fs.Bool("stream", true, "stream samples to unwinder workers during collection (false = materialize, then generate)")
	chunkSize := fs.Int("chunk-size", 0, "streamed-chunk size in samples (0 = default)")
	tracePath := fs.String("trace", "", "write the daemon's Chrome trace-event JSON on shutdown (stitchable with the fleet trace)")
	ohBudget := fs.Float64("overhead-budget", 0, "profiling-overhead budget in percent; breaches are journaled (0 = no check)")
	_ = fs.Parse(args)

	if err := sampling.ValidateWorkers(*workers); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	pc := pgo.DefaultProfileConfig()
	pc.Period = *period
	pc.Workers = *workers
	pc.NoStream = !*stream
	pc.ChunkSize = *chunkSize

	reg := obs.NewRegistry()
	profName := *name
	if profName == "" {
		if *workload != "" {
			profName = *workload
		} else {
			profName = "app"
		}
	}
	// The daemon's overhead observatory: every refresh is metered, the
	// normalized ledger lands on /overhead, and budget breaches plus
	// low-confidence findings go to the journal the dashboard renders.
	journal := obs.NewJournal()
	oo := &pgo.OverheadObs{Journal: journal, BudgetPct: *ohBudget, Source: profName}
	var refresher introspect.RefreshFunc
	switch {
	case *workload != "":
		if fs.NArg() > 0 {
			return fmt.Errorf("serve: -workload and source files are mutually exclusive")
		}
		fn, err := pgo.NewWorkloadRefresherObserved(*workload, *scale, pc, reg, oo)
		if err != nil {
			return err
		}
		refresher = fn
	default:
		var files []*source.File
		files, err := parseFiles(fs.Args())
		if err != nil {
			return err
		}
		fn, err := pgo.NewRefresherObserved(files, pgo.SeededRequests(*n, *seed, *bound), pc, reg, oo)
		if err != nil {
			return err
		}
		refresher = fn
	}

	srv := introspect.NewServer(profName, reg)
	srv.SetJournal(journal)
	oo.Sink = srv
	// The daemon's own trace: deterministic trace ID derived from the
	// profile name and training seed, so a fleet fixture stitches
	// identically across reruns. The seed keeps IDs distinct across the
	// instances of one fleet (same name, different seeds) — identical IDs
	// would collide in the stitched trace. Handler and refresh spans adopt
	// fleet-propagated traceparent contexts as remote parents, which is
	// what makes the exports stitchable.
	obsrv := obs.NewTrace()
	obsrv.SetTraceID(obs.DeriveTraceID("serve", profName, strconv.FormatInt(*seed, 10)))
	srv.SetTrace(obsrv.Root())
	srv.SetTimeSeries(obs.NewTimeSeries(0))

	// Collect the first generation synchronously so the daemon never serves
	// an empty profile.
	prof, rep, err := refresher()
	if err != nil {
		return fmt.Errorf("serve: initial profile collection: %w", err)
	}
	if err := srv.SetProfile(prof, rep); err != nil {
		return err
	}

	// Self-lint the HTTP surface and the metric namespace before exposing
	// them: a handler writing before Content-Type or an uncataloged serve.*
	// metric is a bug, not a runtime condition.
	var lintErrs int
	for _, d := range append(analysis.CheckHTTPEndpoints(srv.Handler(), srv.Endpoints()),
		analysis.CheckMetricRegistry(reg)...) {
		fmt.Fprintf(os.Stderr, "serve: lint: %s\n", d)
		if d.Sev == analysis.SevError {
			lintErrs++
		}
	}
	if lintErrs > 0 {
		return fmt.Errorf("serve: %d lint error(s) on the HTTP surface", lintErrs)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving profile %q on http://%s (generation %d, %d samples)\n",
		profName, l.Addr(), srv.Generation(), prof.TotalSamples())
	for _, ep := range srv.Endpoints() {
		fmt.Printf("  http://%s%s\n", l.Addr(), ep)
	}
	if *refresh > 0 {
		fmt.Printf("refreshing every %s\n", *refresh)
		go srv.RefreshLoop(ctx, *refresh, refresher)
	}
	serveErr := srv.Serve(ctx, l)
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := obsrv.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote trace %s\n", *tracePath)
	}
	return serveErr
}
