package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"csspgo/internal/analysis"
	"csspgo/internal/analysis/tv"
	"csspgo/internal/ir"
	"csspgo/internal/opt"
	"csspgo/internal/pgo"
	"csspgo/internal/stale"
)

// lintReport is the machine-readable output of `csspgo lint -json`.
type lintReport struct {
	Errors      int                   `json:"errors"`
	Warnings    int                   `json:"warnings"`
	Diagnostics []analysis.Diagnostic `json:"diagnostics"`
	Violation   *lintPassViolation    `json:"passViolation,omitempty"`
}

// lintPassViolation serializes an opt.PassViolation.
type lintPassViolation struct {
	Pass  string                `json:"pass"`
	Func  string                `json:"func"`
	Diags []analysis.Diagnostic `json:"diagnostics"`
	Diff  string                `json:"irDiff"`
}

// cmdLint builds the sources under the checked pipeline and runs the full
// analysis suite: dominator/dataflow lints (use-before-def, unreachable
// blocks), flow conservation on the inferred profile, probe placement, and
// profile linting against the pristine probed IR. Diagnostics carry a
// severity and, for pipeline violations, the name of the offending pass.
func cmdLint(args []string) error {
	fs := flag.NewFlagSet("lint", flag.ExitOnError)
	profPath := fs.String("profile", "", "profile to lint and build with (text format)")
	probes := fs.Bool("probes", true, "insert pseudo-probes before the pipeline")
	preinl := fs.Bool("preinline", false, "honor pre-inliner decisions in the profile")
	verifyEach := fs.Bool("verify-each", true, "check IR invariants after every pass")
	tvMode := fs.Bool("tv", false, "translation validation: prove every pass boundary semantically equivalent (effect analysis, CFG bisimulation, differential-execution oracle)")
	inject := fs.String("inject", "", "miscompile-injection harness: corrupt the program as <kind>@<pass> and expect -tv to attribute it (kinds: "+strings.Join(tv.InjectionNames(), ", ")+")")
	injectSeed := fs.Uint64("inject-seed", 1, "injection site selection seed")
	staleMatch := fs.Bool("stale-matching", false, "build with anchor matching and report each stale function's rung on the degradation ladder")
	minQuality := fs.Float64("min-match-quality", 0, "anchor-match acceptance threshold (0 = default)")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON diagnostics")
	_ = fs.Parse(args)

	files, err := parseFiles(fs.Args())
	if err != nil {
		return err
	}
	cfg := pgo.BuildConfig{
		Probes:                *probes,
		UsePreInlineDecisions: *preinl,
		VerifyEach:            *verifyEach,
		ValidateSemantics:     *tvMode,
		StaleMatching:         *staleMatch,
		MinMatchQuality:       *minQuality,
	}
	var injectDesc string
	if *inject != "" {
		kindName, passName, ok := strings.Cut(*inject, "@")
		if !ok {
			return fmt.Errorf("lint: -inject wants <kind>@<pass>, got %q", *inject)
		}
		kind, err := tv.ParseInjection(kindName)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		if !passRegistered(passName) {
			return fmt.Errorf("lint: -inject: unknown pass %q (registered: %s)", passName, strings.Join(opt.PassNames(), ", "))
		}
		cfg.InjectAfter = map[string]func(*ir.Program){passName: func(p *ir.Program) {
			if d, applied := tv.Apply(p, kind, *injectSeed); applied {
				injectDesc = d
			}
		}}
	}
	if *profPath != "" {
		prof, err := loadProfile(*profPath)
		if err != nil {
			return err
		}
		cfg.Profile = prof
	}

	rep := lintReport{Diagnostics: []analysis.Diagnostic{}}
	// Metric-namespace and event-catalog hygiene: both static catalogs must
	// be duplicate-free and follow the naming conventions before any run
	// report or event journal is trusted.
	rep.Diagnostics = append(rep.Diagnostics, analysis.CheckMetricCatalog()...)
	rep.Diagnostics = append(rep.Diagnostics, analysis.CheckEventCatalog()...)
	res, err := pgo.Build(files, cfg)
	if err != nil {
		var pv *opt.PassViolation
		if !errors.As(err, &pv) {
			return err
		}
		rep.Violation = &lintPassViolation{
			Pass: pv.Pass, Func: pv.Func, Diags: pv.Diags, Diff: pv.Diff(),
		}
		rep.Diagnostics = append(rep.Diagnostics, pv.Diags...)
	} else {
		// Lint the profile against the pristine probed IR (checksums and
		// probe allocations as they were at collection time), then the
		// optimized program itself.
		if cfg.Profile != nil {
			rep.Diagnostics = append(rep.Diagnostics, analysis.CheckProfile(cfg.Profile, res.FreshIR)...)
			if *staleMatch {
				params := stale.DefaultParams()
				if *minQuality > 0 {
					params.MinQuality = *minQuality
				}
				rep.Diagnostics = append(rep.Diagnostics,
					analysis.CheckStaleMatching(cfg.Profile, res.FreshIR, params)...)
			}
		}
		opts := analysis.DefaultOptions()
		opts.Flow = cfg.Profile != nil // inference ran last, so flow must hold
		opts.Probes = *probes
		rep.Diagnostics = append(rep.Diagnostics, analysis.CheckProgram(res.IR, opts)...)
	}
	// Deterministic output: identical findings collapse and the rest sort by
	// function/pass/check, so runs are byte-comparable in text and JSON alike.
	rep.Diagnostics = analysis.DedupDiagnostics(rep.Diagnostics)
	analysis.SortDiagnostics(rep.Diagnostics)
	if rep.Violation != nil {
		analysis.SortDiagnostics(rep.Violation.Diags)
	}
	for _, d := range rep.Diagnostics {
		switch d.Sev {
		case analysis.SevError:
			rep.Errors++
		case analysis.SevWarning:
			rep.Warnings++
		}
	}
	if *inject != "" {
		if injectDesc == "" {
			return fmt.Errorf("lint: -inject %s: no injection site found", *inject)
		}
		fmt.Fprintf(os.Stderr, "injected: %s\n", injectDesc)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		if rep.Violation != nil {
			fmt.Printf("pass %q broke function %s:\n", rep.Violation.Pass, rep.Violation.Func)
			for _, d := range rep.Violation.Diags {
				fmt.Printf("  %s\n", d)
			}
			fmt.Println("IR diff (before/after the pass):")
			fmt.Print(rep.Violation.Diff)
		} else {
			for _, d := range rep.Diagnostics {
				fmt.Println(d)
			}
			if *staleMatch && rep.Violation == nil {
				printLadder(res.Stats)
			}
		}
		fmt.Printf("lint: %d error(s), %d warning(s)\n", rep.Errors, rep.Warnings)
	}
	if rep.Errors > 0 {
		return fmt.Errorf("lint: %d error(s)", rep.Errors)
	}
	if injectDesc != "" {
		// The harness contract: an injected miscompile that survives the
		// validator is a false negative and must fail loudly.
		return fmt.Errorf("lint: injected miscompile went undetected (%s)", injectDesc)
	}
	return nil
}

// passRegistered reports whether name is a registered optimization pass.
func passRegistered(name string) bool {
	for _, n := range opt.PassNames() {
		if n == name {
			return true
		}
	}
	return false
}
