package main

import (
	"flag"
	"fmt"
	"os"

	"csspgo/internal/overhead"
	"csspgo/internal/pgo"
)

// cmdOverhead runs the cost-and-confidence observatory on a binary: one
// metered run under the profiling cost model (sampling interrupts cost
// cycles), attributing every profiling-machinery cycle per probe and per
// function, plus a confidence heatmap of the profile that run produced.
// With -budget it is a CI gate: overhead beyond the budget exits 2 (the
// `report -diff` convention), distinct from exit 1 operational errors.
// With -validate it checks an existing csspgo-overhead/v1 artifact instead.
func cmdOverhead(args []string) error {
	fs := flag.NewFlagSet("overhead", flag.ExitOnError)
	bin := fs.String("bin", "", "binary to meter")
	profPath := fs.String("profile", "", "score confidence against this profile instead of the one collected by the metered run")
	out := fs.String("o", "", "write the normalized csspgo-overhead/v1 artifact here")
	n := fs.Int("n", 200, "request count")
	seed := fs.Int64("seed", 1, "request generator seed")
	bound := fs.Int64("bound", 1000, "request magnitude bound")
	reqArgs := fs.String("args", "", "explicit comma-separated request (overrides -n/-seed/-bound)")
	period := fs.Uint64("period", 797, "sampling period (taken branches)")
	top := fs.Int("top", 10, "rows per table in text output (0 = all)")
	budget := fs.Float64("budget", 0, "overhead budget in percent; exceeding it exits 2 (0 = no gate)")
	asJSON := fs.Bool("json", false, "print the artifact instead of text tables")
	validate := fs.Bool("validate", false, "validate an existing artifact (positional arg) and exit")
	_ = fs.Parse(args)

	if *validate {
		if fs.NArg() != 1 {
			return fmt.Errorf("overhead: -validate wants exactly one artifact path")
		}
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		if _, err := overhead.Decode(data); err != nil {
			return err
		}
		fmt.Printf("%s: valid %s artifact\n", fs.Arg(0), overhead.Schema)
		return nil
	}
	if *bin == "" {
		return fmt.Errorf("overhead: -bin is required")
	}
	prog, err := loadBin(*bin)
	if err != nil {
		return err
	}
	pc := pgo.DefaultProfileConfig()
	pc.Period = *period
	rep, _, err := pgo.MeasureOverhead(prog, requests(*reqArgs, *n, *seed, *bound), pc)
	if err != nil {
		return err
	}
	if *profPath != "" {
		prof, err := loadProfile(*profPath)
		if err != nil {
			return err
		}
		rep.Confidence = overhead.Score(prog, prof, *period, 0, 0)
	}
	rep.Binary = *bin
	rep.Normalize()
	if err := rep.Validate(); err != nil {
		return err
	}
	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			return err
		}
		fmt.Printf("wrote overhead artifact %s\n", *out)
	}
	if *asJSON {
		data, err := rep.Encode()
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
	} else {
		fmt.Print(rep.Format(*top))
	}
	if *budget > 0 && rep.Totals.OverheadPct > *budget {
		// The CI gate: a blown overhead budget is an exit-code-2 failure,
		// distinct from exit 1 (operational errors), like `report -diff`.
		fmt.Fprintf(os.Stderr, "overhead: %.3f%% exceeds budget %.3f%%\n",
			rep.Totals.OverheadPct, *budget)
		os.Exit(2)
	}
	return nil
}
