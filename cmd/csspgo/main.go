// Command csspgo is the compiler driver: it builds MiniLang programs under
// any PGO variant, runs them on the simulator, collects profiles, and runs
// the offline pre-inliner — the same workflow the paper's production
// deployment automates.
//
// Usage:
//
//	csspgo build   -o app.bin [-probes] [-instrument] [-profile p.prof] [-preinline] [-checked] [-stale-matching [-min-match-quality Q]] [-trace t.json] [-report r.json] src.ml...
//	csspgo run     -bin app.bin [-args 100,7] [-n 50 -seed 1 -bound 1000] [-stats]
//	csspgo profile -bin app.bin -o app.prof -kind cs|probe|autofdo|instr [-n 200 -seed 1 -bound 1000] [-period 797] [-workers N] [-stream=true] [-chunk-size N] [-v] [-trace t.json] [-report r.json]
//	csspgo preinline -bin app.bin -profile app.prof -o app.prof
//	csspgo inspect -bin app.bin | -profile app.prof [-folded | -top N | -coverage -bin app.bin] [-json] | -diff old.prof new.prof [-json]
//	csspgo lint    [-profile p.prof] [-probes] [-verify-each] [-tv [-inject kind@pass [-inject-seed N]]] [-stale-matching [-min-match-quality Q]] [-json] src.ml...
//	csspgo report  a.json [b.json] | csspgo report -diff [-threshold PCT] a.json b.json | csspgo report -validate r.json | csspgo report -validate-trace t.json -min-spans N
//	csspgo overhead -bin app.bin [-profile app.prof] [-n 200 -seed 1 -bound 1000] [-period 797] [-top 10] [-budget PCT] [-json] [-o overhead.json] | csspgo overhead -validate overhead.json
//	csspgo serve   -addr :8572 [-workload hhvm -scale 1 | src.ml... [-n 60 -seed 1 -bound 1000]] [-name NAME] [-refresh 30s] [-period 797] [-workers N] [-trace t.json]
//	csspgo fleet   -o fleet.prof [-rounds 1 -interval 30s] [-timeout 2s -retries 2] [-quota N -freshness 5m] [-min-overlap 0.5 -threshold 10] [-weights 1,2,...] [-inject poison-counts] [-report r.json] [-trace t.json -journal j.jsonl -timeseries ts.json -status-addr :8573] url...
//	csspgo trace   -stitch fleet.json [-min-cross-links 1] [-require-ancestor span=ancestor] t1.json t2.json... | csspgo trace [-require-ancestor span=ancestor] t.json...
//
// -trace writes Chrome trace-event JSON (load it in chrome://tracing or
// Perfetto); -report writes a machine-readable run manifest that `csspgo
// report` pretty-prints, validates, or diffs. `csspgo trace -stitch` merges
// per-process trace exports into one causally-linked fleet trace, resolving
// traceparent-propagated parent links across process boundaries.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"csspgo/internal/machine"
	"csspgo/internal/obs"
	"csspgo/internal/opt"
	"csspgo/internal/pgo"
	"csspgo/internal/preinline"
	"csspgo/internal/profdata"
	"csspgo/internal/sampling"
	"csspgo/internal/sim"
	"csspgo/internal/source"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = cmdBuild(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "preinline":
		err = cmdPreinline(os.Args[2:])
	case "merge":
		err = cmdMerge(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "lint":
		err = cmdLint(os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	case "overhead":
		err = cmdOverhead(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "fleet":
		err = cmdFleet(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "csspgo: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: csspgo <build|run|profile|preinline|merge|inspect|lint|report|overhead|serve|fleet|trace> [flags]")
	os.Exit(2)
}

// cmdMerge merges profiles from multiple profiling shards (the continuous
// production-profiling aggregation step).
func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("o", "merged.prof", "output profile path")
	_ = fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("merge: no input profiles")
	}
	var merged *profdata.Profile
	for _, path := range fs.Args() {
		prof, err := loadProfile(path)
		if err != nil {
			return fmt.Errorf("merge %s: %w", path, err)
		}
		if merged == nil {
			merged = prof
			continue
		}
		if prof.Kind != merged.Kind {
			return fmt.Errorf("merge %s: profile kind mismatch", path)
		}
		profdata.MergeProfiles(merged, prof)
	}
	if err := os.WriteFile(*out, []byte(profdata.EncodeToString(merged)), 0o644); err != nil {
		return err
	}
	fmt.Printf("merged %d profiles into %s: %s\n", fs.NArg(), *out, merged)
	return nil
}

func parseFiles(paths []string) ([]*source.File, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("no source files")
	}
	var files []*source.File
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		f, err := source.Parse(path, string(data))
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func loadBin(path string) (*machine.Prog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return machine.ReadProg(f)
}

func loadProfile(path string) (*profdata.Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return profdata.DecodeAny(data)
}

// requests builds the run/profiling request stream from flags.
func requests(args string, n int, seed, bound int64) [][]int64 {
	if args != "" {
		parts := strings.Split(args, ",")
		req := make([]int64, 0, len(parts))
		for _, p := range parts {
			v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad arg %q\n", p)
				os.Exit(2)
			}
			req = append(req, v)
		}
		return [][]int64{req}
	}
	return pgo.SeededRequests(n, seed, bound)
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	out := fs.String("o", "app.bin", "output binary path")
	probes := fs.Bool("probes", false, "insert pseudo-probes")
	instrument := fs.Bool("instrument", false, "materialize probes as counters (Instr PGO training)")
	profPath := fs.String("profile", "", "input profile (text format)")
	preinl := fs.Bool("preinline", false, "honor pre-inliner decisions in the profile")
	checked := fs.Bool("checked", false, "checked build: verify IR invariants and translation-validate every pass boundary; the first violation aborts the build naming the pass")
	staleMatch := fs.Bool("stale-matching", false, "recover stale function profiles via anchor matching instead of dropping them")
	minQuality := fs.Float64("min-match-quality", 0, "anchor-match acceptance threshold (0 = default)")
	tracePath := fs.String("trace", "", "write Chrome trace-event JSON of the build pipeline")
	reportPath := fs.String("report", "", "write a machine-readable run manifest (JSON)")
	_ = fs.Parse(args)

	obsrv := pgo.NewRunObserver()
	psp := obsrv.Trace.Span("parse", obs.A("files", fs.NArg()))
	files, err := parseFiles(fs.Args())
	psp.End()
	if err != nil {
		return err
	}
	cfg := pgo.BuildConfig{
		Probes:                *probes || *instrument,
		Instrument:            *instrument,
		UsePreInlineDecisions: *preinl,
		VerifyEach:            *checked,
		ValidateSemantics:     *checked,
		StaleMatching:         *staleMatch,
		MinMatchQuality:       *minQuality,
	}
	obsrv.ObserveBuild(&cfg)
	if *profPath != "" {
		lsp := obsrv.Trace.Span("load_profile")
		prof, err := loadProfile(*profPath)
		lsp.End()
		if err != nil {
			return err
		}
		cfg.Profile = prof
	}
	res, err := pgo.Build(files, cfg)
	if err != nil {
		var pv *opt.PassViolation
		if errors.As(err, &pv) {
			fmt.Fprintln(os.Stderr, pv.Report())
			return fmt.Errorf("build: checked build failed after pass %q", pv.Pass)
		}
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.Bin.Save(f); err != nil {
		return err
	}
	fmt.Printf("built %s: %s\n", *out, res.Bin)
	fmt.Printf("pipeline: %+v\n", *res.Stats)
	if *staleMatch {
		printLadder(res.Stats)
	}
	return writeObservability(obsrv, "csspgo build", pgo.BuildConfigEcho(cfg), *tracePath, *reportPath)
}

// writeObservability flushes a run's trace and manifest to the paths the
// -trace/-report flags named (either may be empty).
func writeObservability(o *pgo.RunObserver, tool string, config map[string]any, tracePath, reportPath string) error {
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := o.Trace.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote trace %s\n", tracePath)
	}
	if reportPath != "" {
		if err := o.Report(tool, config).WriteFile(reportPath); err != nil {
			return err
		}
		fmt.Printf("wrote report %s\n", reportPath)
	}
	return nil
}

// printLadder summarizes where stale profiles landed on the degradation
// ladder (exact matches never enter it and are not listed).
func printLadder(st *opt.Stats) {
	dropped := st.StaleFuncs - st.MatchedFuncs - st.FlatFallbackFuncs
	fmt.Printf("degradation ladder: %d stale func(s): %d anchor-matched (mean quality %.2f, %d probes transferred), %d flat-fallback, %d dropped; %d context(s) remapped\n",
		st.StaleFuncs, st.MatchedFuncs, st.MatchQuality, st.RecoveredProbes,
		st.FlatFallbackFuncs, dropped, st.MatchedContexts)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	binPath := fs.String("bin", "app.bin", "binary path")
	argStr := fs.String("args", "", "comma-separated args for one run of main")
	n := fs.Int("n", 20, "generated request count (when -args absent)")
	seed := fs.Int64("seed", 1, "request generator seed")
	bound := fs.Int64("bound", 1000, "request magnitude bound")
	stats := fs.Bool("stats", false, "print execution statistics")
	_ = fs.Parse(args)

	bin, err := loadBin(*binPath)
	if err != nil {
		return err
	}
	m := sim.New(bin, sim.DefaultCostParams(), sim.PMUConfig{})
	for _, req := range requests(*argStr, *n, *seed, *bound) {
		v, err := m.Run(req...)
		if err != nil {
			return err
		}
		fmt.Printf("main(%v) = %d\n", req, v)
	}
	if *stats {
		fmt.Printf("stats: %+v\n", m.Stats())
	}
	return nil
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	binPath := fs.String("bin", "app.bin", "training binary path")
	out := fs.String("o", "app.prof", "output profile path")
	kind := fs.String("kind", "cs", "profile kind: cs|probe|autofdo|instr")
	n := fs.Int("n", 200, "training request count")
	seed := fs.Int64("seed", 1, "request generator seed")
	bound := fs.Int64("bound", 1000, "request magnitude bound")
	period := fs.Uint64("period", 797, "sampling period (taken branches)")
	pebs := fs.Bool("pebs", true, "precise sampling (synchronized stacks)")
	workers := fs.Int("workers", 0, "profile-generation worker pool size (0 = GOMAXPROCS, 1 = serial; output is byte-identical for any value)")
	stream := fs.Bool("stream", true, "stream samples to unwinder workers during collection (false = materialize, then generate; output is byte-identical)")
	chunkSize := fs.Int("chunk-size", 0, "streamed-chunk size in samples (0 = default)")
	verbose := fs.Bool("v", false, "print an unwinder/sampling statistics summary")
	tracePath := fs.String("trace", "", "write Chrome trace-event JSON of profile generation")
	reportPath := fs.String("report", "", "write a machine-readable run manifest (JSON)")
	_ = fs.Parse(args)

	if err := sampling.ValidateWorkers(*workers); err != nil {
		return err
	}
	obsrv := pgo.NewRunObserver()
	bin, err := loadBin(*binPath)
	if err != nil {
		return err
	}
	reqs := requests("", *n, *seed, *bound)

	var prof *profdata.Profile
	switch *kind {
	case "instr":
		csp := obsrv.Trace.Span("collect_samples", obs.A("requests", len(reqs)))
		m := sim.New(bin, sim.DefaultCostParams(), sim.PMUConfig{})
		for _, req := range reqs {
			if _, err := m.Run(req...); err != nil {
				csp.End()
				return err
			}
		}
		csp.End()
		m.Stats().Publish(obsrv.Metrics)
		prof = sampling.GenerateInstrProfile(bin, m.Counters())
		if *verbose {
			fmt.Printf("sim: %+v\n", m.Stats())
		}
	default:
		cfg := sim.PMUConfig{
			SamplePeriod: *period, LBRDepth: 16, PEBS: *pebs,
			SampleStacks: *kind == "cs", Jitter: true, Seed: 0x5eed,
		}
		csp := obsrv.Trace.Span("collect_samples", obs.A("requests", len(reqs)))
		m := sim.New(bin, sim.DefaultCostParams(), cfg)

		// With streaming on (the default), the CS unwinder consumes chunks
		// live from the PMU instead of a materialized sample slice; the
		// resulting profile is byte-identical either way.
		var csSink *sampling.CSSPGOStream
		csOpts := sampling.DefaultCSSPGOOptions()
		csOpts.Workers = *workers
		csOpts.Stream = *stream
		if *chunkSize > 0 {
			csOpts.ChunkSize = *chunkSize
		}
		csOpts.Trace = obsrv.Trace.Root()
		csOpts.Metrics = obsrv.Metrics
		if *kind == "cs" && *stream {
			csSink = sampling.NewCSSPGOStream(bin, csOpts)
			m.SetSampleSink(csSink, *chunkSize)
		}

		for _, req := range reqs {
			if _, err := m.Run(req...); err != nil {
				if csSink != nil {
					m.FlushSamples()
					csSink.Finish()
				}
				csp.End()
				return err
			}
		}
		if csSink != nil {
			m.FlushSamples()
		}
		csp.End()
		m.Stats().Publish(obsrv.Metrics)
		flat := sampling.FlatOptions{
			Workers: *workers, Stream: *stream, ChunkSize: *chunkSize,
			Trace: obsrv.Trace.Root(), Metrics: obsrv.Metrics,
		}
		switch *kind {
		case "cs":
			var p *profdata.Profile
			var stats sampling.UnwindStats
			if csSink != nil {
				p, stats = csSink.Finish()
			} else {
				p, stats = sampling.GenerateCSSPGO(bin, m.Samples(), csOpts)
			}
			prof = p
			if *verbose {
				fmt.Println(stats.Summary())
			}
		case "probe":
			prof = sampling.GenerateProbeProfileOpts(bin, m.Samples(), flat)
		case "autofdo":
			prof = sampling.GenerateAutoFDOOpts(bin, m.Samples(), flat)
		default:
			return fmt.Errorf("unknown profile kind %q", *kind)
		}
	}
	if err := os.WriteFile(*out, []byte(profdata.EncodeToString(prof)), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s (%d bytes)\n", *out, prof, prof.SizeBytes())
	// The echo records the run's semantic inputs, not its execution strategy:
	// -workers changes wall time only, so manifests from different machine
	// parallelism stay diffable.
	echo := map[string]any{
		"kind": *kind, "n": *n, "seed": *seed, "bound": *bound,
		"period": *period, "pebs": *pebs,
	}
	return writeObservability(obsrv, "csspgo profile", echo, *tracePath, *reportPath)
}

func cmdPreinline(args []string) error {
	fs := flag.NewFlagSet("preinline", flag.ExitOnError)
	binPath := fs.String("bin", "app.bin", "profiled binary (for size extraction)")
	profPath := fs.String("profile", "app.prof", "context-sensitive profile")
	out := fs.String("o", "app.prof", "output profile path")
	trim := fs.Uint64("trim", 0, "cold-context trim threshold (0 = auto)")
	_ = fs.Parse(args)

	bin, err := loadBin(*binPath)
	if err != nil {
		return err
	}
	prof, err := loadProfile(*profPath)
	if err != nil {
		return err
	}
	if !prof.CS {
		return fmt.Errorf("profile is not context-sensitive")
	}
	th := *trim
	if th == 0 {
		th = prof.TotalSamples() / 2000
		if th < 2 {
			th = 2
		}
	}
	trimmed := prof.TrimColdContexts(th)
	sizes := preinline.ExtractSizes(bin)
	res := preinline.Run(prof, sizes, preinline.DeriveParams(prof))
	if err := os.WriteFile(*out, []byte(profdata.EncodeToString(prof)), 0o644); err != nil {
		return err
	}
	fmt.Printf("trimmed %d cold contexts; pre-inliner marked %d, promoted %d; wrote %s\n",
		trimmed, res.Inlined, res.Promoted, *out)
	return nil
}
