package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"csspgo/internal/obs"
)

// cmdTrace works with Chrome trace-event exports: stitch N per-process
// traces (one per `csspgo serve` / `csspgo fleet` run) into a single
// causally-linked fleet trace, or validate one file's link structure. The
// stitcher reassigns each input to its own pid and then validates the
// merged trace: every parent_span_id must resolve — a broken cross-process
// link is an error, not a warning. -require-ancestor additionally asserts a
// causal chain (e.g. every serve-side handler span must descend from the
// aggregator's round span), which is how the `make check` observability
// lane proves the fleet trace is really stitched and not just concatenated.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	stitch := fs.String("stitch", "", "merge the input traces into this output file")
	minCross := fs.Int("min-cross-links", 1, "cross-process parent links -stitch requires in the merged trace")
	ancestors := multiFlag{}
	fs.Var(&ancestors, "require-ancestor", "assert span=ancestor causality (every span named <span> must have an <ancestor> on its parent chain; repeatable)")
	_ = fs.Parse(args)

	reqs := make([][2]string, 0, len(ancestors))
	for _, spec := range ancestors {
		span, anc, ok := strings.Cut(spec, "=")
		if !ok || span == "" || anc == "" {
			return fmt.Errorf("trace: -require-ancestor wants <span>=<ancestor>, got %q", spec)
		}
		reqs = append(reqs, [2]string{span, anc})
	}

	if *stitch != "" {
		if fs.NArg() < 2 {
			return fmt.Errorf("trace: -stitch wants >= 2 input traces, got %d", fs.NArg())
		}
		inputs := make([][]byte, fs.NArg())
		for i, path := range fs.Args() {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			inputs[i] = data
		}
		merged, err := obs.StitchChromeTraces(inputs)
		if err != nil {
			return err
		}
		stats, err := obs.ValidateStitchedTrace(merged, *minCross)
		if err != nil {
			return err
		}
		for _, r := range reqs {
			if err := obs.RequireAncestor(merged, r[0], r[1]); err != nil {
				return err
			}
		}
		if err := os.WriteFile(*stitch, merged, 0o644); err != nil {
			return err
		}
		names, err := obs.SpanNames(merged)
		if err != nil {
			return err
		}
		fmt.Printf("stitched %d traces into %s: %d spans, %d links (%d cross-process), span names: %s\n",
			fs.NArg(), *stitch, stats.Spans, stats.Links, stats.CrossProcessLinks, strings.Join(names, ", "))
		return nil
	}

	// Validation mode: check each input independently (single-process traces
	// need no cross-links, so the floor is 0 unless overridden).
	if fs.NArg() == 0 {
		return fmt.Errorf("trace: no input traces (use -stitch OUT in1.json in2.json... or pass files to validate)")
	}
	floor := 0
	if *minCross > 1 {
		floor = *minCross
	}
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		stats, err := obs.ValidateStitchedTrace(data, floor)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for _, r := range reqs {
			if err := obs.RequireAncestor(data, r[0], r[1]); err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
		}
		fmt.Printf("%s: valid trace: %d spans, %d links (%d cross-process)\n",
			path, stats.Spans, stats.Links, stats.CrossProcessLinks)
	}
	return nil
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }
