package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"csspgo/internal/introspect"
	"csspgo/internal/quality"
)

// cmdInspect introspects binaries and profiles: binary layout (-bin alone),
// the context trie of a profile (-profile), its folded-stack flamegraph
// export (-folded / -top), per-function probe coverage against a binary
// (-coverage), and analytics diffing two profiles (-diff old new).
func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	binPath := fs.String("bin", "", "binary path (layout view; with -coverage, the probe source)")
	profPath := fs.String("profile", "", "profile to inspect (text or binary format)")
	folded := fs.Bool("folded", false, "print the folded-stack (flamegraph-collapsed) export")
	top := fs.Int("top", 0, "print the N heaviest folded stacks")
	coverage := fs.Bool("coverage", false, "print per-function probe coverage (needs -bin and -profile)")
	diff := fs.Bool("diff", false, "diff two profiles given as positional args: overlap, gained/lost contexts, divergence")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON")
	_ = fs.Parse(args)

	emit := func(v any) error {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}

	if *diff {
		if fs.NArg() != 2 {
			return fmt.Errorf("inspect -diff: want old.prof new.prof, got %d arg(s)", fs.NArg())
		}
		old, err := loadProfile(fs.Arg(0))
		if err != nil {
			return err
		}
		new, err := loadProfile(fs.Arg(1))
		if err != nil {
			return err
		}
		d := quality.DiffProfiles(old, new)
		if *jsonOut {
			return emit(d)
		}
		fmt.Printf("diff %s -> %s\n", fs.Arg(0), fs.Arg(1))
		fmt.Print(d.Format())
		return nil
	}

	if *profPath != "" {
		prof, err := loadProfile(*profPath)
		if err != nil {
			return err
		}
		switch {
		case *coverage:
			if *binPath == "" {
				return fmt.Errorf("inspect -coverage: need -bin for the probe metadata")
			}
			bin, err := loadBin(*binPath)
			if err != nil {
				return err
			}
			covs, err := introspect.Coverage(bin, prof)
			if err != nil {
				return err
			}
			if *jsonOut {
				return emit(covs)
			}
			fmt.Print(introspect.FormatCoverage(covs))
		case *folded, *top > 0:
			entries := introspect.Folded(prof)
			if *top > 0 {
				entries = introspect.Top(entries, *top)
			}
			if *jsonOut {
				type row struct {
					Stack  string `json:"stack"`
					Weight uint64 `json:"weight"`
				}
				rows := make([]row, len(entries))
				for i, e := range entries {
					rows[i] = row{Stack: e.Key(), Weight: e.Weight}
				}
				return emit(rows)
			}
			if *top > 0 {
				for _, e := range entries {
					fmt.Printf("%12d %s\n", e.Weight, e.Key())
				}
			} else {
				os.Stdout.Write(introspect.EncodeFoldedText(entries))
			}
		default:
			fmt.Print(introspect.BuildTrie(prof).Format())
		}
		return nil
	}

	if *binPath == "" {
		return fmt.Errorf("inspect: need -bin (binary layout) or -profile (trie/folded/coverage) or -diff old new")
	}
	bin, err := loadBin(*binPath)
	if err != nil {
		return err
	}
	fmt.Println(bin)
	fmt.Printf("%-24s %10s %10s %8s\n", "function", "start", "size B", "cold B")
	for _, fn := range bin.Funcs {
		cold := fn.ColdEnd - fn.ColdStart
		fmt.Printf("%-24s %#10x %10d %8d\n", fn.Name, fn.Start, fn.End-fn.Start, cold)
	}
	fmt.Printf("sections: text=%dB debug=%dB probemeta=%dB\n", bin.TextSize, bin.DebugSize, bin.ProbeMetaSize)
	return nil
}
