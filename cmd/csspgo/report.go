package main

import (
	"flag"
	"fmt"
	"os"

	"csspgo/internal/obs"
)

// cmdReport works with run manifests: pretty-print one, diff two (metric
// deltas with regression highlighting), or validate manifests / Chrome
// trace files against their schemas (the `make check` observability lane).
func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	validate := fs.Bool("validate", false, "only validate the manifest(s) against the run-report schema")
	validateTrace := fs.String("validate-trace", "", "validate a Chrome trace-event file instead of manifests")
	minSpans := fs.Int("min-spans", 1, "distinct span names -validate-trace requires")
	diffGate := fs.Bool("diff", false, "diff two manifests and exit 2 if anything REGRESSED")
	threshold := fs.Float64("threshold", 100*obs.DefaultRegressionThreshold, "regression threshold in percent for -diff")
	_ = fs.Parse(args)

	if *validateTrace != "" {
		data, err := os.ReadFile(*validateTrace)
		if err != nil {
			return err
		}
		if err := obs.ValidateChromeTrace(data, *minSpans); err != nil {
			return err
		}
		fmt.Printf("%s: valid Chrome trace (>= %d distinct spans)\n", *validateTrace, *minSpans)
		return nil
	}

	switch fs.NArg() {
	case 1:
		rep, err := obs.ReadReport(fs.Arg(0))
		if err != nil {
			return err
		}
		if *validate {
			fmt.Printf("%s: valid %s manifest\n", fs.Arg(0), obs.Schema)
			return nil
		}
		fmt.Print(rep.Format())
		return nil
	case 2:
		a, err := obs.ReadReport(fs.Arg(0))
		if err != nil {
			return err
		}
		b, err := obs.ReadReport(fs.Arg(1))
		if err != nil {
			return err
		}
		if *validate {
			fmt.Printf("%s, %s: valid %s manifests\n", fs.Arg(0), fs.Arg(1), obs.Schema)
			return nil
		}
		res := obs.DiffReportsThreshold(a, b, *threshold/100)
		fmt.Print(res.Text)
		if *diffGate && res.Regressions > 0 {
			// The CI gate: regressions are an exit-code-2 failure, distinct
			// from exit 1 (operational errors) so scripts can tell them apart.
			fmt.Fprintf(os.Stderr, "report: %d regression(s) beyond %.0f%%\n", res.Regressions, *threshold)
			os.Exit(2)
		}
		return nil
	default:
		return fmt.Errorf("report: want 1 manifest (pretty-print) or 2 (diff), got %d", fs.NArg())
	}
}
