// Command profgen converts a profiling run into a PGO profile — the
// counterpart of create_llvm_prof / llvm-profgen. It loads a training
// binary, replays a request stream under the simulated PMU (or reads
// instrumentation counters), and writes the text profile.
//
// Usage:
//
//	profgen -bin app.bin -o app.prof -kind cs|probe|autofdo|instr [-n 200] [-seed 1] [-bound 1000] [-period 797] [-pebs=true] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"

	"csspgo/internal/machine"
	"csspgo/internal/profdata"
	"csspgo/internal/sampling"
	"csspgo/internal/sim"
)

func main() {
	binPath := flag.String("bin", "app.bin", "training binary path")
	out := flag.String("o", "app.prof", "output profile path")
	kind := flag.String("kind", "cs", "profile kind: cs|probe|autofdo|instr")
	n := flag.Int("n", 200, "training request count")
	seed := flag.Int64("seed", 1, "request generator seed")
	bound := flag.Int64("bound", 1000, "request magnitude bound")
	period := flag.Uint64("period", 797, "sampling period (taken branches)")
	pebs := flag.Bool("pebs", true, "precise sampling (synchronized stacks)")
	notails := flag.Bool("no-tailcall-inference", false, "disable the missing-frame inferrer")
	binaryOut := flag.Bool("binary", false, "write the compact binary profile format")
	workers := flag.Int("workers", 0, "profile-generation worker pool size (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	if err := run(*binPath, *out, *kind, *n, *seed, *bound, *period, *pebs, *notails, *binaryOut, *workers); err != nil {
		fmt.Fprintf(os.Stderr, "profgen: %v\n", err)
		os.Exit(1)
	}
}

func run(binPath, out, kind string, n int, seed, bound int64, period uint64, pebs, noTails, binaryOut bool, workers int) error {
	f, err := os.Open(binPath)
	if err != nil {
		return err
	}
	bin, err := machine.ReadProg(f)
	f.Close()
	if err != nil {
		return err
	}

	reqs := make([][]int64, n)
	x := uint64(seed)*2654435761 + 12345
	for i := range reqs {
		next := func() int64 {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			return int64(x % uint64(bound))
		}
		reqs[i] = []int64{next(), next()}
	}

	var prof *profdata.Profile
	if kind == "instr" {
		m := sim.New(bin, sim.DefaultCostParams(), sim.PMUConfig{})
		for _, req := range reqs {
			if _, err := m.Run(req...); err != nil {
				return err
			}
		}
		prof = sampling.GenerateInstrProfile(bin, m.Counters())
	} else {
		cfg := sim.PMUConfig{
			SamplePeriod: period, LBRDepth: 16, PEBS: pebs,
			SampleStacks: kind == "cs", Jitter: true, Seed: 0x5eed,
		}
		m := sim.New(bin, sim.DefaultCostParams(), cfg)
		for _, req := range reqs {
			if _, err := m.Run(req...); err != nil {
				return err
			}
		}
		switch kind {
		case "cs":
			opts := sampling.DefaultCSSPGOOptions()
			opts.TailCallInference = !noTails
			opts.Workers = workers
			p, stats := sampling.GenerateCSSPGO(bin, m.Samples(), opts)
			prof = p
			fmt.Println(stats.Summary())
		case "probe":
			prof = sampling.GenerateProbeProfileOpts(bin, m.Samples(), sampling.FlatOptions{Workers: workers})
		case "autofdo":
			prof = sampling.GenerateAutoFDOOpts(bin, m.Samples(), sampling.FlatOptions{Workers: workers})
		default:
			return fmt.Errorf("unknown profile kind %q", kind)
		}
	}
	var data []byte
	if binaryOut {
		data = profdata.EncodeBinary(prof)
	} else {
		data = []byte(profdata.EncodeToString(prof))
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s (%d bytes)\n", out, prof, len(data))
	return nil
}
