// Command profgen converts a profiling run into a PGO profile — the
// counterpart of create_llvm_prof / llvm-profgen. It loads a training
// binary, replays a request stream under the simulated PMU (or reads
// instrumentation counters), and writes the text profile.
//
// Usage:
//
//	profgen -bin app.bin -o app.prof -kind cs|probe|autofdo|instr [-n 200] [-seed 1] [-bound 1000] [-period 797] [-pebs=true] [-workers N] [-stream=true] [-chunk-size N]
package main

import (
	"flag"
	"fmt"
	"os"

	"csspgo/internal/machine"
	"csspgo/internal/profdata"
	"csspgo/internal/sampling"
	"csspgo/internal/sim"
)

func main() {
	binPath := flag.String("bin", "app.bin", "training binary path")
	out := flag.String("o", "app.prof", "output profile path")
	kind := flag.String("kind", "cs", "profile kind: cs|probe|autofdo|instr")
	n := flag.Int("n", 200, "training request count")
	seed := flag.Int64("seed", 1, "request generator seed")
	bound := flag.Int64("bound", 1000, "request magnitude bound")
	period := flag.Uint64("period", 797, "sampling period (taken branches)")
	pebs := flag.Bool("pebs", true, "precise sampling (synchronized stacks)")
	notails := flag.Bool("no-tailcall-inference", false, "disable the missing-frame inferrer")
	binaryOut := flag.Bool("binary", false, "write the compact binary profile format")
	workers := flag.Int("workers", 0, "profile-generation worker pool size (0 = GOMAXPROCS, 1 = serial)")
	stream := flag.Bool("stream", true, "stream samples to unwinder workers during collection (false = materialize, then generate)")
	chunkSize := flag.Int("chunk-size", 0, "streamed-chunk size in samples (0 = default)")
	flag.Parse()

	gen := genConfig{
		kind: *kind, n: *n, seed: *seed, bound: *bound, period: *period,
		pebs: *pebs, noTails: *notails, binaryOut: *binaryOut,
		workers: *workers, stream: *stream, chunkSize: *chunkSize,
	}
	if err := run(*binPath, *out, gen); err != nil {
		fmt.Fprintf(os.Stderr, "profgen: %v\n", err)
		os.Exit(1)
	}
}

type genConfig struct {
	kind               string
	n                  int
	seed, bound        int64
	period             uint64
	pebs, noTails      bool
	binaryOut, stream  bool
	workers, chunkSize int
}

func run(binPath, out string, gc genConfig) error {
	if err := sampling.ValidateWorkers(gc.workers); err != nil {
		return err
	}
	kind, n, seed, bound := gc.kind, gc.n, gc.seed, gc.bound
	period, pebs, noTails, binaryOut, workers := gc.period, gc.pebs, gc.noTails, gc.binaryOut, gc.workers
	f, err := os.Open(binPath)
	if err != nil {
		return err
	}
	bin, err := machine.ReadProg(f)
	f.Close()
	if err != nil {
		return err
	}

	reqs := make([][]int64, n)
	x := uint64(seed)*2654435761 + 12345
	for i := range reqs {
		next := func() int64 {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			return int64(x % uint64(bound))
		}
		reqs[i] = []int64{next(), next()}
	}

	var prof *profdata.Profile
	if kind == "instr" {
		m := sim.New(bin, sim.DefaultCostParams(), sim.PMUConfig{})
		for _, req := range reqs {
			if _, err := m.Run(req...); err != nil {
				return err
			}
		}
		prof = sampling.GenerateInstrProfile(bin, m.Counters())
	} else {
		cfg := sim.PMUConfig{
			SamplePeriod: period, LBRDepth: 16, PEBS: pebs,
			SampleStacks: kind == "cs", Jitter: true, Seed: 0x5eed,
		}
		m := sim.New(bin, sim.DefaultCostParams(), cfg)

		opts := sampling.DefaultCSSPGOOptions()
		opts.TailCallInference = !noTails
		opts.Workers = workers
		opts.Stream = gc.stream
		if gc.chunkSize > 0 {
			opts.ChunkSize = gc.chunkSize
		}
		// Streaming mode wires the CS unwinder directly to the PMU, so the
		// run never materializes the full sample stream.
		var csSink *sampling.CSSPGOStream
		if kind == "cs" && gc.stream {
			csSink = sampling.NewCSSPGOStream(bin, opts)
			m.SetSampleSink(csSink, gc.chunkSize)
		}

		for _, req := range reqs {
			if _, err := m.Run(req...); err != nil {
				if csSink != nil {
					m.FlushSamples()
					csSink.Finish()
				}
				return err
			}
		}
		if csSink != nil {
			m.FlushSamples()
		}
		flat := sampling.FlatOptions{Workers: workers, Stream: gc.stream, ChunkSize: gc.chunkSize}
		switch kind {
		case "cs":
			var p *profdata.Profile
			var stats sampling.UnwindStats
			if csSink != nil {
				p, stats = csSink.Finish()
			} else {
				p, stats = sampling.GenerateCSSPGO(bin, m.Samples(), opts)
			}
			prof = p
			fmt.Println(stats.Summary())
		case "probe":
			prof = sampling.GenerateProbeProfileOpts(bin, m.Samples(), flat)
		case "autofdo":
			prof = sampling.GenerateAutoFDOOpts(bin, m.Samples(), flat)
		default:
			return fmt.Errorf("unknown profile kind %q", kind)
		}
	}
	var data []byte
	if binaryOut {
		data = profdata.EncodeBinary(prof)
	} else {
		data = []byte(profdata.EncodeToString(prof))
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s (%d bytes)\n", out, prof, len(data))
	return nil
}
