// Command experiments regenerates the paper's evaluation: every table and
// figure (Fig. 6-9, Table I, the §IV.D client workload) plus the in-text
// experiments (§III.A source drift, §III.B profile trimming and tail-call
// frame recovery).
//
// Usage:
//
//	experiments [-run all|fig6|fig7|fig8|fig9|table1|client|drift|trim|tailcall|driftmatrix|corruption|streambench|fleetfaults|overheadsweep] [-scale N] [-report bench.json]
//
// -report writes a run manifest with each experiment's headline numbers as
// experiment.<name>.* gauges and its wall time in the stage table; this is
// what `make bench` uses to emit BENCH_4.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"csspgo/internal/pgo"
)

func main() {
	runSel := flag.String("run", "all", "comma-separated experiments to run")
	scale := flag.Int("scale", 2, "request-stream scale factor")
	reportPath := flag.String("report", "", "write a machine-readable run manifest (JSON)")
	flag.Parse()

	want := map[string]bool{}
	for _, s := range strings.Split(*runSel, ",") {
		want[strings.TrimSpace(s)] = true
	}
	all := want["all"]

	type experiment struct {
		name string
		run  func(int) (fmt.Stringer, error)
	}
	experiments := []experiment{
		{"fig6", func(s int) (fmt.Stringer, error) { return pgo.RunFig6(s) }},
		{"fig7", func(s int) (fmt.Stringer, error) { return pgo.RunFig7(s) }},
		{"fig8", func(s int) (fmt.Stringer, error) { return pgo.RunFig8(s) }},
		{"fig9", func(s int) (fmt.Stringer, error) { return pgo.RunFig9(s) }},
		{"table1", func(s int) (fmt.Stringer, error) { return pgo.RunTable1(s) }},
		{"client", func(s int) (fmt.Stringer, error) { return pgo.RunClient(s) }},
		{"drift", func(s int) (fmt.Stringer, error) { return pgo.RunDrift(s) }},
		{"trim", func(s int) (fmt.Stringer, error) { return pgo.RunTrim(s) }},
		{"tailcall", func(s int) (fmt.Stringer, error) { return pgo.RunTailCall(s) }},
		{"ablation-preinliner", func(s int) (fmt.Stringer, error) { return pgo.RunAblationPreInliner(s) }},
		{"ablation-pebs", func(s int) (fmt.Stringer, error) { return pgo.RunAblationPEBS(s) }},
		{"ablation-inference", func(s int) (fmt.Stringer, error) { return pgo.RunAblationInference(s) }},
		{"ablation-barrier", func(s int) (fmt.Stringer, error) { return pgo.RunAblationBarrier(s) }},
		{"ablation-lbrdepth", func(s int) (fmt.Stringer, error) { return pgo.RunAblationLBRDepth(s) }},
		{"valueprofile", func(s int) (fmt.Stringer, error) { return pgo.RunValueProfile(s) }},
		{"ablation-icp", func(s int) (fmt.Stringer, error) { return pgo.RunAblationICP(s) }},
		{"driftmatrix", func(s int) (fmt.Stringer, error) { return pgo.RunDriftMatrix(s) }},
		{"corruption", func(s int) (fmt.Stringer, error) { return pgo.RunCorruptionMatrix(s) }},
		{"streambench", func(s int) (fmt.Stringer, error) { return pgo.RunStreamBench(s) }},
		{"fleetfaults", func(s int) (fmt.Stringer, error) { return pgo.RunFleetFaults(s) }},
		{"overheadsweep", func(s int) (fmt.Stringer, error) { return pgo.RunOverheadSweep(s) }},
	}

	obsrv := pgo.NewRunObserver()
	ran := 0
	for _, e := range experiments {
		if !all && !want[e.name] {
			continue
		}
		sp := obsrv.Trace.Span("experiment." + e.name)
		res, err := e.run(*scale)
		sp.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		pgo.PublishExperiment(obsrv.Metrics, e.name, res)
		fmt.Println(res)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: nothing selected by -run=%s\n", *runSel)
		os.Exit(2)
	}
	if *reportPath != "" {
		rep := obsrv.Report("experiments", map[string]any{"run": *runSel, "scale": *scale})
		if err := rep.WriteFile(*reportPath); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote report %s\n", *reportPath)
	}
}
