#!/usr/bin/env sh
# Alloc-regression gate: re-runs the streaming-generation benchmark and
# fails if any lane's allocs/op grew more than 10% over the committed
# baseline (BENCH_ALLOC_BASELINE.txt). Allocation counts are deterministic
# modulo map-growth timing, so 10% headroom is generous; a real hot-path
# regression (a lost pooled buffer, a de-interned key) shows up as 2x+.
set -eu
cd "$(dirname "$0")/.."

base=${1:-BENCH_ALLOC_BASELINE.txt}
if [ ! -f "$base" ]; then
	echo "allocgate: baseline $base not found" >&2
	exit 1
fi

out=$(go test -run '^$' -bench 'BenchmarkStreamingGeneration' -benchtime 10x -benchmem .)
echo "$out" | grep 'allocs/op' | awk -v basefile="$base" '
BEGIN {
	while ((getline line < basefile) > 0) {
		if (line ~ /^#/ || line == "") continue
		split(line, f, " ")
		want[f[1]] = f[2]
	}
}
{
	name = $1
	sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix, if any
	allocs = ""
	for (i = 2; i <= NF; i++) if ($i == "allocs/op") allocs = $(i - 1)
	if (allocs == "") next
	if (!(name in want)) {
		printf "allocgate: no baseline for %s (add it to %s)\n", name, basefile
		bad = 1
		next
	}
	if (allocs + 0 > want[name] * 1.10) {
		printf "allocgate: REGRESSION %s: %d allocs/op > 110%% of baseline %d\n", name, allocs, want[name]
		bad = 1
	} else {
		printf "allocgate: %s: %d allocs/op (baseline %d) OK\n", name, allocs, want[name]
	}
}
END { exit bad }
'
