#!/usr/bin/env sh
# Repo-wide hygiene gate: formatting, vet, build, tests, and the csspgo
# linter over every example module. Run via `make check`.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (parallel profile generation + metric registry)"
go test -race ./internal/sampling ./internal/pgo ./internal/obs

echo "== fuzz smoke (profile readers, 5s per target)"
# One target per invocation: go test rejects -fuzz patterns matching
# multiple fuzz targets in a package.
for target in FuzzReadText FuzzReadBinary; do
	go test ./internal/profdata -run="^$target\$" -fuzz="^$target\$" -fuzztime=5s
done

echo "== csspgo lint (examples)"
go build -o bin/csspgo ./cmd/csspgo
for f in examples/*/*.ml; do
	out=$(bin/csspgo lint "$f")
	echo "$f: $(echo "$out" | tail -n 1)"
done

echo "== observability (trace + run report on a real workload)"
# Build an example twice with -trace/-report, validate the Chrome trace
# (>= 8 distinct pipeline spans) and the manifests against the schema,
# then smoke the diff path.
obsdir=$(mktemp -d)
trap 'rm -rf "$obsdir"' EXIT
src=$(ls examples/*/*.ml | head -n 1)
bin/csspgo build -o "$obsdir/app.bin" -probes -trace "$obsdir/trace.json" -report "$obsdir/a.json" "$src" >/dev/null
bin/csspgo profile -bin "$obsdir/app.bin" -o "$obsdir/app.prof" -kind cs -n 50 -v >/dev/null
bin/csspgo build -o "$obsdir/app2.bin" -probes -profile "$obsdir/app.prof" -report "$obsdir/b.json" "$src" >/dev/null
bin/csspgo report -validate-trace "$obsdir/trace.json" -min-spans 8
bin/csspgo report -validate "$obsdir/a.json" "$obsdir/b.json"
bin/csspgo report "$obsdir/a.json" "$obsdir/b.json" >/dev/null

echo "check: OK"
