#!/usr/bin/env sh
# Repo-wide hygiene gate: formatting, vet, build, tests, and the csspgo
# linter over every example module. Run via `make check`.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (parallel profile generation)"
go test -race ./internal/sampling ./internal/pgo

echo "== fuzz smoke (profile readers, 5s per target)"
# One target per invocation: go test rejects -fuzz patterns matching
# multiple fuzz targets in a package.
for target in FuzzReadText FuzzReadBinary; do
	go test ./internal/profdata -run="^$target\$" -fuzz="^$target\$" -fuzztime=5s
done

echo "== csspgo lint (examples)"
go build -o bin/csspgo ./cmd/csspgo
for f in examples/*/*.ml; do
	out=$(bin/csspgo lint "$f")
	echo "$f: $(echo "$out" | tail -n 1)"
done

echo "check: OK"
