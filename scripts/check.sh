#!/usr/bin/env sh
# Repo-wide hygiene gate: formatting, vet, build, tests, and the csspgo
# linter over every example module. Run via `make check`.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (parallel profile generation + metric registry + profile serving + fleet aggregation)"
go test -race ./internal/sampling ./internal/pgo ./internal/obs ./internal/introspect ./internal/fleet

echo "== fuzz smoke (profile readers + folded codecs, 5s per target)"
# One target per invocation: go test rejects -fuzz patterns matching
# multiple fuzz targets in a package.
for target in FuzzReadText FuzzReadBinary; do
	go test ./internal/profdata -run="^$target\$" -fuzz="^$target\$" -fuzztime=5s
done
for target in FuzzFoldedText FuzzFoldedBinary; do
	go test ./internal/introspect -run="^$target\$" -fuzz="^$target\$" -fuzztime=5s
done
go test ./internal/opt -run='^FuzzTranslationValidate$' -fuzz='^FuzzTranslationValidate$' -fuzztime=5s
go test ./internal/sampling -run='^FuzzChunkedDispatcher$' -fuzz='^FuzzChunkedDispatcher$' -fuzztime=5s
go test ./internal/obs -run='^FuzzParseTraceparent$' -fuzz='^FuzzParseTraceparent$' -fuzztime=5s

echo "== alloc-regression gate (streaming generation hot path)"
sh scripts/allocgate.sh

echo "== csspgo lint (examples)"
go build -o bin/csspgo ./cmd/csspgo
for f in examples/*/*.ml; do
	out=$(bin/csspgo lint "$f")
	echo "$f: $(echo "$out" | tail -n 1)"
done

echo "== translation validation (checked builds over every example)"
# Every pass boundary of every example must prove semantically equivalent:
# zero violations, i.e. zero validator false positives.
for f in examples/*/*.ml; do
	out=$(bin/csspgo lint -tv "$f")
	echo "$f [tv]: $(echo "$out" | tail -n 1)"
done

echo "== miscompile-injection matrix (every injected bug must be caught + attributed)"
tvsrc=examples/quickstart/app.ml
for kind in drop-branch swap-successors effectful-probe drop-store clobber-return; do
	for pass in dce simplify-cfg; do
		if out=$(bin/csspgo lint -tv -inject "$kind@$pass" "$tvsrc" 2>&1); then
			echo "tv missed injected $kind@$pass" >&2
			echo "$out" >&2
			exit 1
		fi
		if ! echo "$out" | grep -q "pass \"$pass\" broke"; then
			echo "tv misattributed $kind@$pass:" >&2
			echo "$out" >&2
			exit 1
		fi
		echo "$kind@$pass: detected, attributed to $pass"
	done
done

echo "== observability (trace + run report on a real workload)"
# Build an example twice with -trace/-report, validate the Chrome trace
# (>= 8 distinct pipeline spans) and the manifests against the schema,
# then smoke the diff path.
obsdir=$(mktemp -d)
trap 'rm -rf "$obsdir"' EXIT
src=$(ls examples/*/*.ml | head -n 1)
bin/csspgo build -o "$obsdir/app.bin" -probes -trace "$obsdir/trace.json" -report "$obsdir/a.json" "$src" >/dev/null
bin/csspgo profile -bin "$obsdir/app.bin" -o "$obsdir/app.prof" -kind cs -n 50 -v >/dev/null
bin/csspgo build -o "$obsdir/app2.bin" -probes -profile "$obsdir/app.prof" -report "$obsdir/b.json" "$src" >/dev/null
bin/csspgo report -validate-trace "$obsdir/trace.json" -min-spans 8
bin/csspgo report -validate "$obsdir/a.json" "$obsdir/b.json"
bin/csspgo report "$obsdir/a.json" "$obsdir/b.json" >/dev/null

echo "== report -diff regression gate (exit codes)"
# Hand-written manifests with fixed timings: a doubled stage wall time must
# exit 2 under the default 10% threshold, a self-diff must exit 0, and a
# loose threshold must forgive the regression.
cat > "$obsdir/fast.json" <<'EOF'
{"schema":"csspgo-run-report/v1","tool":"gate","stages":[{"name":"build","wall_ns":1000000,"count":1}]}
EOF
cat > "$obsdir/slow.json" <<'EOF'
{"schema":"csspgo-run-report/v1","tool":"gate","stages":[{"name":"build","wall_ns":2000000,"count":1}]}
EOF
if bin/csspgo report -diff "$obsdir/fast.json" "$obsdir/slow.json" >/dev/null 2>&1; then
	echo "report -diff missed a 2x regression" >&2
	exit 1
fi
bin/csspgo report -diff "$obsdir/fast.json" "$obsdir/fast.json" >/dev/null
bin/csspgo report -diff -threshold 150 "$obsdir/fast.json" "$obsdir/slow.json" >/dev/null

echo "== inspect -diff (profile analytics on the sourcedrift example)"
# Profiles from the pristine and CFG-changed sources must diff: self-diff
# overlaps at 1.0, cross-diff strictly below.
bin/csspgo build -o "$obsdir/pristine.bin" -probes examples/sourcedrift/pristine.ml >/dev/null
bin/csspgo profile -bin "$obsdir/pristine.bin" -o "$obsdir/old.prof" -kind cs -n 60 >/dev/null
bin/csspgo build -o "$obsdir/changed.bin" -probes examples/sourcedrift/cfgchanged.ml >/dev/null
bin/csspgo profile -bin "$obsdir/changed.bin" -o "$obsdir/new.prof" -kind cs -n 60 >/dev/null
bin/csspgo inspect -diff "$obsdir/old.prof" "$obsdir/old.prof" | grep -q "context overlap:      1.0000"
if bin/csspgo inspect -diff "$obsdir/old.prof" "$obsdir/new.prof" | grep -q "context overlap:      1.0000"; then
	echo "inspect -diff reported full overlap across a CFG change" >&2
	exit 1
fi

echo "== overhead observatory (cost ledger determinism + budget gate)"
# Two metered runs of the quickstart binary must produce byte-identical
# normalized artifacts, the artifact must validate, and a microscopic
# budget must trip the exit-2 gate (the report -diff convention).
bin/csspgo build -o "$obsdir/oh.bin" -probes examples/quickstart/app.ml >/dev/null
bin/csspgo overhead -bin "$obsdir/oh.bin" -o "$obsdir/oh-a.json" -n 50 >/dev/null
bin/csspgo overhead -bin "$obsdir/oh.bin" -o "$obsdir/oh-b.json" -n 50 >/dev/null
cmp "$obsdir/oh-a.json" "$obsdir/oh-b.json"
bin/csspgo overhead -validate "$obsdir/oh-a.json"
grep -q '"schema": "csspgo-overhead/v1"' "$obsdir/oh-a.json"
rc=0
bin/csspgo overhead -bin "$obsdir/oh.bin" -n 50 -budget 0.0001 >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 2 ]; then
	echo "overhead budget gate exited $rc, want 2" >&2
	exit 1
fi

echo "== serve smoke (HTTP daemon on an ephemeral port)"
bin/csspgo serve -addr 127.0.0.1:0 -name quickstart examples/quickstart/app.ml > "$obsdir/serve.log" 2>&1 &
servepid=$!
url=""
i=0
while [ $i -lt 100 ]; do
	url=$(sed -n 's|^serving profile .* on \(http://[^ ]*\).*$|\1|p' "$obsdir/serve.log" | head -n 1)
	[ -n "$url" ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ -z "$url" ]; then
	echo "serve never came up:" >&2
	cat "$obsdir/serve.log" >&2
	kill "$servepid" 2>/dev/null || true
	exit 1
fi
curl -sf "$url/healthz" | grep -q '"status":"ok"'
curl -sf "$url/healthz" | grep -q '"last_refresh"'
curl -sf "$url/timeseries" | grep -q '"schema": "csspgo-timeseries/v1"'
curl -sf "$url/dashboard" | grep -qi '<html'
curl -sf "$url/metrics" | grep -q '^serve_requests '
curl -sf "$url/metrics" | grep -q '^serve_swap_latency_ns{quantile="0.99"} '
curl -sf "$url/overhead" | grep -q '"schema": "csspgo-overhead/v1"'
curl -sf "$url/dashboard" | grep -q 'overhead observatory'
curl -sf "$url/flamegraph" > "$obsdir/flame.folded"
cmp "$obsdir/flame.folded" internal/pgo/testdata/quickstart.folded
curl -sf "$url/profiles/quickstart" > "$obsdir/served.prof"
bin/csspgo inspect -profile "$obsdir/served.prof" -folded >/dev/null
kill -INT "$servepid"
wait "$servepid"

echo "== fleet smoke (aggregate 4 instances + 1 dead, promote, poison-rollback)"
# The control plane against a hostile fleet: four live `csspgo serve`
# instances with different training seeds plus one dead URL must still
# aggregate and promote (exit 0); a re-run with -inject poison-counts must
# be rejected by the gate (exit 2) leaving the last-good artifact
# byte-identical.
fleeturls=""
fleetpids=""
for s in 1 2 3 4; do
	bin/csspgo serve -addr 127.0.0.1:0 -name quickstart -seed "$s" examples/quickstart/app.ml > "$obsdir/fleet$s.log" 2>&1 &
	fleetpids="$fleetpids $!"
done
for s in 1 2 3 4; do
	u=""
	i=0
	while [ $i -lt 100 ]; do
		u=$(sed -n 's|^serving profile .* on \(http://[^ ]*\).*$|\1|p' "$obsdir/fleet$s.log" | head -n 1)
		[ -n "$u" ] && break
		i=$((i + 1))
		sleep 0.1
	done
	if [ -z "$u" ]; then
		echo "fleet instance $s never came up:" >&2
		cat "$obsdir/fleet$s.log" >&2
		kill $fleetpids 2>/dev/null || true
		exit 1
	fi
	fleeturls="$fleeturls $u/profiles/quickstart"
done
# One-shot aggregate + first (ungated) promotion; the dead source must be
# tolerated, not fatal.
bin/csspgo fleet -o "$obsdir/fleet.prof" -report "$obsdir/fleet.json" $fleeturls http://127.0.0.1:1/profiles/dead
bin/csspgo report -validate "$obsdir/fleet.json"
# Gated re-promotion against the adopted last-good must pass.
bin/csspgo fleet -o "$obsdir/fleet.prof" $fleeturls
cp "$obsdir/fleet.prof" "$obsdir/fleet.prof.golden"
# Injected poison must be caught by the gate: exit 2, artifact untouched.
rc=0
bin/csspgo fleet -o "$obsdir/fleet.prof" -inject poison-counts $fleeturls || rc=$?
if [ "$rc" -eq 0 ]; then
	echo "fleet gate promoted a poisoned candidate" >&2
	kill $fleetpids 2>/dev/null || true
	exit 1
fi
if [ "$rc" -ne 2 ]; then
	echo "fleet poison run exited $rc, want 2 (gate rejection)" >&2
	kill $fleetpids 2>/dev/null || true
	exit 1
fi
cmp "$obsdir/fleet.prof" "$obsdir/fleet.prof.golden"
kill -INT $fleetpids
wait $fleetpids

echo "== fleet observability (traced round, stitched trace, deterministic journal + time-series)"
# Three traced instances plus a traced aggregator: the per-process Chrome
# exports must stitch into one causally-linked fleet trace (every
# serve.handle_profile span descends from the aggregator's fleet.round
# span, across the process boundary), and two identical fleet runs must
# write byte-identical normalized journals and time-series stores.
obsurls=""
obspids=""
for s in 1 2 3; do
	bin/csspgo serve -addr 127.0.0.1:0 -name quickstart -seed "$s" \
		-trace "$obsdir/obs-serve$s.trace.json" examples/quickstart/app.ml > "$obsdir/obs-serve$s.log" 2>&1 &
	obspids="$obspids $!"
done
for s in 1 2 3; do
	u=""
	i=0
	while [ $i -lt 100 ]; do
		u=$(sed -n 's|^serving profile .* on \(http://[^ ]*\).*$|\1|p' "$obsdir/obs-serve$s.log" | head -n 1)
		[ -n "$u" ] && break
		i=$((i + 1))
		sleep 0.1
	done
	if [ -z "$u" ]; then
		echo "observability instance $s never came up:" >&2
		cat "$obsdir/obs-serve$s.log" >&2
		kill $obspids 2>/dev/null || true
		exit 1
	fi
	obsurls="$obsurls $u/profiles/quickstart"
done
# Two identical one-shot runs, each promoting from scratch. Both mint the
# same seeded trace IDs, so one aggregator export resolves the instance-side
# parent links from either run.
bin/csspgo fleet -o "$obsdir/obs-a.prof" -trace "$obsdir/obs-fleet.trace.json" \
	-journal "$obsdir/obs-a.journal.jsonl" -timeseries "$obsdir/obs-a.ts.json" $obsurls
bin/csspgo fleet -o "$obsdir/obs-b.prof" \
	-journal "$obsdir/obs-b.journal.jsonl" -timeseries "$obsdir/obs-b.ts.json" $obsurls
cmp "$obsdir/obs-a.journal.jsonl" "$obsdir/obs-b.journal.jsonl"
cmp "$obsdir/obs-a.ts.json" "$obsdir/obs-b.ts.json"
grep -q '"type":"promotion"' "$obsdir/obs-a.journal.jsonl"
grep -q '"fleet.merge.rounds"' "$obsdir/obs-a.ts.json"
# Instance traces are written on graceful shutdown; collect, then stitch.
kill -INT $obspids
wait $obspids
bin/csspgo trace -stitch "$obsdir/obs-merged.trace.json" -min-cross-links 3 \
	-require-ancestor serve.handle_profile=fleet.round \
	"$obsdir/obs-fleet.trace.json" "$obsdir/obs-serve1.trace.json" \
	"$obsdir/obs-serve2.trace.json" "$obsdir/obs-serve3.trace.json"

echo "check: OK"
