module csspgo

go 1.22
