
func main(n, seed) {
	var fast = &fastpath;
	var slow = &slowpath;
	var total = 0;
	for (var i = 0; i < n % 60 + 40; i = i + 1) {
		var h = fast;
		if ((seed + i) % 23 == 0) { h = slow; }
		total = total + icall(h, i);
	}
	return total;
}
func fastpath(x) { return x * 2 + 1; }
func slowpath(x) {
	var s = 0;
	for (var k = 0; k < 12; k = k + 1) { s = s + x % 7; }
	return s;
}
