// Indirect calls & value profiling (extension): MiniLang's `icall` calls
// through function values (`&handler`). Profiles record per-site target
// histograms — exact under instrumentation, LBR-sampled otherwise — and the
// optimizer's indirect-call promotion (ICP) turns a dominated site into a
// guarded direct call the inliner can then consume.
package main

import (
	_ "embed"
	"fmt"
	"log"

	"csspgo"
)

// The MiniLang module lives in its own file so `csspgo lint` (and the other
// CLI subcommands) can consume it directly.
//
//go:embed dispatch.ml
var app string

func main() {
	mods := []csspgo.Module{{Name: "dispatch.ml", Source: app}}
	train := make([][]int64, 60)
	for i := range train {
		train[i] = []int64{int64(i * 31), int64(i)}
	}

	base, _, err := csspgo.BuildVariant(mods, csspgo.Baseline, nil)
	if err != nil {
		log.Fatal(err)
	}
	baseStats, err := csspgo.Run(base, train)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %12s %12s %11s %10s\n", "variant", "cycles", "impr %", "promotions", "icalls")
	fmt.Printf("%-12s %12d %12s %11s %10d\n", "baseline", baseStats.Cycles, "—", "—", baseStats.IndirectCalls)

	for _, v := range []csspgo.Variant{csspgo.ProbeOnly, csspgo.FullCS, csspgo.InstrPGO} {
		opt, prof, err := csspgo.BuildVariant(mods, v, train)
		if err != nil {
			log.Fatal(err)
		}
		st, err := csspgo.Run(opt, train)
		if err != nil {
			log.Fatal(err)
		}
		impr := 100 * (float64(baseStats.Cycles) - float64(st.Cycles)) / float64(baseStats.Cycles)
		fmt.Printf("%-12s %12d %+11.2f%% %11d %10d\n",
			v, st.Cycles, impr, opt.Stats.ICPromotions, st.IndirectCalls)
		_ = prof

		// Semantics must be unchanged.
		b, _, err := csspgo.RunOutputs(base, train[:3])
		if err != nil {
			log.Fatal(err)
		}
		o, _, err := csspgo.RunOutputs(opt, train[:3])
		if err != nil {
			log.Fatal(err)
		}
		for i := range b {
			if b[i] != o[i] {
				log.Fatalf("%s changed semantics", v)
			}
		}
	}
	fmt.Println("\nthe dominated site becomes `if h == &fastpath { fastpath(i) } else { icall h(i) }`;")
	fmt.Println("the direct call then inlines, and retired indirect calls collapse on the hot path.")
}
