
global requests;

func main(n, seed) {
	requests = requests + 1;
	var total = 0;
	for (var i = 0; i < n % 40 + 20; i = i + 1) {
		total = total + handle(i, seed);
	}
	return total;
}

func handle(item, seed) {
	if (item % 4 == 0) { return transform(item + seed, 1); }
	if (item % 4 == 1) { return transform(item * 3, 2); }
	return transform(item - seed, 3);
}

func transform(v, mode) {
	if (mode == 1) { return v * 2 + 1; }
	if (mode == 2) {
		var s = 0;
		var k = v % 9;
		while (k > 0) { s = s + v % 7; k = k - 1; }
		return s;
	}
	return v % 1000;
}
