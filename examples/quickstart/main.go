// Quickstart: the end-to-end CSSPGO workflow through the public API —
// build a training binary, profile it under synchronized LBR + stack
// sampling, run the pre-inliner, rebuild with the context-sensitive
// profile, and compare cycles against the plain -O2 baseline.
package main

import (
	_ "embed"
	"fmt"
	"log"

	"csspgo"
)

// The MiniLang module lives in its own file so `csspgo lint` (and the other
// CLI subcommands) can consume it directly.
//
//go:embed app.ml
var app string

func main() {
	mods := []csspgo.Module{{Name: "app.ml", Source: app}}

	// Request streams: training and held-out evaluation.
	train := stream(0x7EA)
	eval := stream(0xE7A)

	// Plain -O2 baseline.
	base, _, err := csspgo.BuildVariant(mods, csspgo.Baseline, nil)
	if err != nil {
		log.Fatal(err)
	}
	baseStats, err := csspgo.Run(base, eval)
	if err != nil {
		log.Fatal(err)
	}

	// Full CSSPGO: train → sample → unwind → trim → pre-inline → rebuild.
	opt, prof, err := csspgo.BuildVariant(mods, csspgo.FullCS, train)
	if err != nil {
		log.Fatal(err)
	}
	optStats, err := csspgo.Run(opt, eval)
	if err != nil {
		log.Fatal(err)
	}

	impr := 100 * (float64(baseStats.Cycles) - float64(optStats.Cycles)) / float64(baseStats.Cycles)
	fmt.Printf("baseline: %d cycles for %d requests\n", baseStats.Cycles, len(eval))
	fmt.Printf("CSSPGO:   %d cycles  (%+.2f%%)\n", optStats.Cycles, impr)
	fmt.Printf("profile:  %v\n", prof)
	fmt.Printf("pipeline: %d sample inlines, %d blocks split cold, %d functions laid out\n",
		opt.Stats.SampleInlines, opt.Stats.SplitBlocks, opt.Stats.LayoutFuncs)

	// Outputs must be identical — PGO never changes semantics.
	b, _, err := csspgo.RunOutputs(base, eval[:5])
	if err != nil {
		log.Fatal(err)
	}
	o, _, err := csspgo.RunOutputs(opt, eval[:5])
	if err != nil {
		log.Fatal(err)
	}
	for i := range b {
		if b[i] != o[i] {
			log.Fatalf("semantics changed: request %d: %d vs %d", i, b[i], o[i])
		}
	}
	fmt.Println("outputs verified identical on the first 5 requests")
}

func stream(seed uint64) [][]int64 {
	out := make([][]int64, 60)
	x := seed | 1
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = []int64{int64(x % 500), int64(x>>32) % 100}
	}
	return out
}
