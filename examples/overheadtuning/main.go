// Overhead tuning: pseudo-instrumentation as a *flexible framework*
// (§III.A). The probe barrier strength is the knob: BarrierWeak is the
// production tuning (if-convert and friends unblocked — near-zero run-time
// cost, a sliver of profile accuracy given up); BarrierStrong makes probes
// behave like traditional instrumentation barriers (control-flow merges
// blocked — better preserved control flow, real run-time cost). This
// example measures both ends against a probe-free build, plus full counter
// instrumentation for scale.
package main

import (
	_ "embed"
	"fmt"
	"log"

	"csspgo/internal/codegen"
	"csspgo/internal/irgen"
	"csspgo/internal/opt"
	"csspgo/internal/probe"
	"csspgo/internal/sim"
	"csspgo/internal/source"
)

// The MiniLang module lives in its own file so `csspgo lint` (and the other
// CLI subcommands) can consume it directly.
//
//go:embed app.ml
var app string

func build(barrier opt.BarrierStrength, probes, counters bool) *sim.Machine {
	f, err := source.Parse("app.ml", app)
	if err != nil {
		log.Fatal(err)
	}
	p, err := irgen.Lower(f)
	if err != nil {
		log.Fatal(err)
	}
	if probes {
		probe.InsertProgram(p)
	}
	cfg := opt.TrainingConfig()
	cfg.Barrier = barrier
	if _, err := opt.Optimize(p, cfg); err != nil {
		log.Fatal(err)
	}
	bin, err := codegen.Lower(p, codegen.Options{Instrument: counters})
	if err != nil {
		log.Fatal(err)
	}
	return sim.New(bin, sim.DefaultCostParams(), sim.PMUConfig{})
}

func main() {
	reqs := make([][]int64, 80)
	for i := range reqs {
		reqs[i] = []int64{int64(i * 17), 0}
	}
	run := func(m *sim.Machine) uint64 {
		for _, r := range reqs {
			if _, err := m.Run(r...); err != nil {
				log.Fatal(err)
			}
		}
		return m.Stats().Cycles
	}

	baseline := run(build(opt.BarrierNone, false, false))
	weak := run(build(opt.BarrierWeak, true, false))
	strong := run(build(opt.BarrierStrong, true, false))
	instr := run(build(opt.BarrierStrong, true, true))

	pct := func(x uint64) float64 {
		return 100 * (float64(x) - float64(baseline)) / float64(baseline)
	}
	fmt.Printf("%-34s %12s %10s\n", "configuration", "cycles", "overhead")
	fmt.Printf("%-34s %12d %9s\n", "no probes (-O2)", baseline, "—")
	fmt.Printf("%-34s %12d %+9.2f%%\n", "pseudo-probes, weak barrier", weak, pct(weak))
	fmt.Printf("%-34s %12d %+9.2f%%\n", "pseudo-probes, strong barrier", strong, pct(strong))
	fmt.Printf("%-34s %12d %+9.2f%%\n", "counter instrumentation", instr, pct(instr))
	fmt.Println()
	fmt.Println("weak barrier = the paper's production point: probes cost ~nothing because")
	fmt.Println("if-convert and similar critical optimizations were tuned to ignore them;")
	fmt.Println("strong barrier buys instrumentation-grade control-flow preservation at a")
	fmt.Println("real run-time price, and counters add the classic 60-80% on top.")
}
