
func main(n, unused) {
	var s = 0;
	for (var i = 0; i < n % 100 + 50; i = i + 1) {
		var v = i % 9;
		if (v > 4) { s = s + i * 2; } else { s = s + i; }
		if (v % 2 == 0) { s = s - 1; } else { s = s + 1; }
		s = s + tiny(i);
	}
	return s;
}
func tiny(x) {
	if (x % 3 == 0) { return x + 7; }
	return x - 7;
}
