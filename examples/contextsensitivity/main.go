// Context sensitivity: the paper's Fig. 3/4 example, run for real. The
// shared helper scalarOp behaves completely differently depending on its
// caller (addVectorHead routes to scalarAdd, subVectorHead to scalarSub).
// A flat profile smears the two behaviours together; the CSSPGO profiler's
// virtual unwinder separates them into distinct contexts, the pre-inliner
// specializes the inlining per caller, and the post-inline profile stays
// accurate — the exact mechanism behind Fig. 3b.
package main

import (
	_ "embed"
	"fmt"
	"log"
	"strings"

	"csspgo"
)

// The MiniLang module lives in its own file so `csspgo lint` (and the other
// CLI subcommands) can consume it directly.
//
//go:embed vector.ml
var vectorApp string

func main() {
	mods := []csspgo.Module{{Name: "vector.ml", Source: vectorApp}}
	train := make([][]int64, 50)
	for i := range train {
		train[i] = []int64{int64(i * 13), 0}
	}

	// Build the probed training binary and collect both profile flavours.
	base, err := csspgo.Build(mods, csspgo.BuildConfig{Probes: true})
	if err != nil {
		log.Fatal(err)
	}
	flat, err := csspgo.CollectProfile(base, csspgo.ProbeOnly, train)
	if err != nil {
		log.Fatal(err)
	}
	cs, err := csspgo.CollectProfile(base, csspgo.FullCS, train)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("— flat (context-insensitive) view of scalarOp —")
	if fp := flat.Funcs["scalarOp"]; fp != nil {
		for _, loc := range fp.SortedCallLocs() {
			for callee, n := range fp.Calls[loc] {
				fmt.Printf("  callsite %s -> %-10s %d samples\n", loc, callee, n)
			}
		}
		fmt.Println("  (both callees blended: inlining must clone both paths everywhere)")
	}

	fmt.Println("\n— context-sensitive view —")
	for _, key := range cs.SortedContextKeys() {
		cp := cs.Contexts[key]
		if cp.Name != "scalarOp" && !strings.Contains(key, "scalarOp") {
			continue
		}
		mark := ""
		if cp.ShouldInline {
			mark = "   [pre-inliner: inline]"
		}
		fmt.Printf("  [%s] head=%d total=%d%s\n", key, cp.HeadSamples, cp.TotalSamples, mark)
	}

	// Rebuild with the CS profile and show the specialized result.
	opt, err := csspgo.Build(mods, csspgo.BuildConfig{
		Probes: true, Profile: cs, UsePreInlineDecisions: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCS build: %d context-driven inlines; %d functions remain in the binary\n",
		opt.Stats.SampleInlines, len(opt.Bin.Funcs))
	for _, fn := range opt.Bin.Funcs {
		fmt.Printf("  %-16s %4d bytes\n", fn.Name, fn.End-fn.Start)
	}
	fmt.Println("(scalarAdd/scalarSub were each inlined only along their own caller's path)")
}
