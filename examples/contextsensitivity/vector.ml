
func main(n, unused) {
	var s = 0;
	for (var i = 0; i < n % 60 + 30; i = i + 1) {
		s = s + addVectorHead(i);
		s = s + subVectorHead(i);
	}
	return s;
}
func addVectorHead(x) { return scalarOp(x, 1); }
func subVectorHead(x) { return scalarOp(x, 2); }
func scalarOp(x, op) {
	if (op == 1) { return scalarAdd(x); }
	return scalarSub(x);
}
func scalarAdd(x) { return x + 10; }
func scalarSub(x) { return x - 10; }
