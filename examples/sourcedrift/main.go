// Source drift: what happens to a PGO profile when the source changes
// after profiling (§III.A). A comment-only edit shifts line numbers —
// line-offset-keyed correlation silently mis-attributes counts, while
// pseudo-probe correlation is untouched (probe IDs are line-independent).
// A CFG-changing edit, by contrast, is *detected* by the probe checksum
// and the stale profile is rejected rather than silently misapplied.
package main

import (
	_ "embed"
	"fmt"
	"log"

	"csspgo"
)

// Three versions of the same module in their own files (so `csspgo lint`
// can consume them directly): pristine, a comment added inside the hot
// function (lines below it shift), and a real logic change (CFG differs).
// The embeds are byte-exact — line numbers in the lowered IR depend on
// them, which is the whole point of this example.
var (
	//go:embed pristine.ml
	pristine string
	//go:embed commented.ml
	commented string
	//go:embed cfgchanged.ml
	cfgChanged string
)

func main() {
	train := make([][]int64, 60)
	for i := range train {
		train[i] = []int64{int64(i * 31), 0}
	}

	// Profile the pristine build once with probes.
	base, err := csspgo.Build(mod(pristine), csspgo.BuildConfig{Probes: true})
	if err != nil {
		log.Fatal(err)
	}
	prof, err := csspgo.CollectProfile(base, csspgo.FullCS, train)
	if err != nil {
		log.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		src  string
	}{
		{"pristine rebuild", pristine},
		{"comment-only drift", commented},
		{"CFG-changing edit", cfgChanged},
	} {
		res, err := csspgo.Build(mod(tc.src), csspgo.BuildConfig{
			Probes: true, Profile: prof, UsePreInlineDecisions: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s annotated=%d stale(checksum-rejected)=%d\n",
			tc.name, res.Stats.AnnotatedFuncs, res.Stats.StaleFuncs)
	}
	fmt.Println()
	fmt.Println("comment-only drift: checksums match (CFG unchanged) — the probe-keyed")
	fmt.Println("profile applies cleanly despite every line having moved.")
	fmt.Println("CFG edit: score's checksum mismatches — its profile is rejected instead")
	fmt.Println("of being silently mis-correlated, exactly the paper's staleness defense.")
}

func mod(src string) []csspgo.Module {
	return []csspgo.Module{{Name: "drift.ml", Source: src}}
}
