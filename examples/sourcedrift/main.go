// Source drift: what happens to a PGO profile when the source changes
// after profiling (§III.A). A comment-only edit shifts line numbers —
// line-offset-keyed correlation silently mis-attributes counts, while
// pseudo-probe correlation is untouched (probe IDs are line-independent).
// A CFG-changing edit, by contrast, is *detected* by the probe checksum
// and the stale profile is rejected rather than silently misapplied.
package main

import (
	"fmt"
	"log"

	"csspgo"
)

// Three versions of the same module: pristine, a comment added inside the
// hot function (lines below it shift), and a real logic change (CFG
// differs).
const pristine = `
func main(n, unused) {
	var s = 0;
	for (var i = 0; i < n % 80 + 40; i = i + 1) { s = s + score(i); }
	return s;
}
func score(x) {
	var acc = x % 7;
	if (acc > 3) { acc = acc * 2; }
	var k = x % 5;
	while (k > 0) { acc = acc + k; k = k - 1; }
	return acc;
}
`

const commented = `
func main(n, unused) {
	var s = 0;
	for (var i = 0; i < n % 80 + 40; i = i + 1) { s = s + score(i); }
	return s;
}
func score(x) {
	// a helpful comment, freshly added
	// (and a second line of it)
	var acc = x % 7;
	if (acc > 3) { acc = acc * 2; }
	var k = x % 5;
	while (k > 0) { acc = acc + k; k = k - 1; }
	return acc;
}
`

const cfgChanged = `
func main(n, unused) {
	var s = 0;
	for (var i = 0; i < n % 80 + 40; i = i + 1) { s = s + score(i); }
	return s;
}
func score(x) {
	var acc = x % 7;
	if (acc > 3) { acc = acc * 2; }
	if (acc > 10) { acc = acc - 1; }
	var k = x % 5;
	while (k > 0) { acc = acc + k; k = k - 1; }
	return acc;
}
`

func main() {
	train := make([][]int64, 60)
	for i := range train {
		train[i] = []int64{int64(i * 31), 0}
	}

	// Profile the pristine build once with probes.
	base, err := csspgo.Build(mod(pristine), csspgo.BuildConfig{Probes: true})
	if err != nil {
		log.Fatal(err)
	}
	prof, err := csspgo.CollectProfile(base, csspgo.FullCS, train)
	if err != nil {
		log.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		src  string
	}{
		{"pristine rebuild", pristine},
		{"comment-only drift", commented},
		{"CFG-changing edit", cfgChanged},
	} {
		res, err := csspgo.Build(mod(tc.src), csspgo.BuildConfig{
			Probes: true, Profile: prof, UsePreInlineDecisions: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s annotated=%d stale(checksum-rejected)=%d\n",
			tc.name, res.Stats.AnnotatedFuncs, res.Stats.StaleFuncs)
	}
	fmt.Println()
	fmt.Println("comment-only drift: checksums match (CFG unchanged) — the probe-keyed")
	fmt.Println("profile applies cleanly despite every line having moved.")
	fmt.Println("CFG edit: score's checksum mismatches — its profile is rejected instead")
	fmt.Println("of being silently mis-correlated, exactly the paper's staleness defense.")
}

func mod(src string) []csspgo.Module {
	return []csspgo.Module{{Name: "drift.ml", Source: src}}
}
