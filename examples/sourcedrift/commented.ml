
func main(n, unused) {
	var s = 0;
	for (var i = 0; i < n % 80 + 40; i = i + 1) { s = s + score(i); }
	return s;
}
func score(x) {
	// a helpful comment, freshly added
	// (and a second line of it)
	var acc = x % 7;
	if (acc > 3) { acc = acc * 2; }
	var k = x % 5;
	while (k > 0) { acc = acc + k; k = k - 1; }
	return acc;
}
