package csspgo

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`). Each Benchmark* runs
// the corresponding experiment and reports its headline numbers as custom
// metrics, so `-bench` output doubles as the reproduction record:
//
//	BenchmarkFig6PerformanceVsAutoFDO  — Fig. 6 (perf vs AutoFDO per workload)
//	BenchmarkFig7CodeSize              — Fig. 7 (code size ratios)
//	BenchmarkFig8ProbeOverhead         — Fig. 8 (pseudo-instrumentation overhead)
//	BenchmarkFig9MetadataSize          — Fig. 9 (probe metadata share)
//	BenchmarkTable1ProfileQuality      — Table I (block overlap + overheads)
//	BenchmarkClientWorkload            — §IV.D (clangish client workload)
//	BenchmarkSourceDrift               — §III.A (drift resilience)
//	BenchmarkProfileSizeTrim           — §III.B (CS profile blowup + trimming)
//	BenchmarkTailCallRecovery          — §III.B (missing-frame inference)
//
// plus microbenchmarks of the substrates (simulator, unwinder, inference,
// pre-inliner).

import (
	"fmt"
	"testing"

	"csspgo/internal/inference"
	"csspgo/internal/machine"
	"csspgo/internal/pgo"
	"csspgo/internal/sampling"
	"csspgo/internal/sim"
	"csspgo/internal/workloads"
)

const benchScale = 2

func BenchmarkFig6PerformanceVsAutoFDO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := pgo.RunFig6(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows {
				b.ReportMetric(row.FullCSImpr, row.Workload+"_csspgo_%")
				b.ReportMetric(row.ProbeOnlyImpr, row.Workload+"_probeonly_%")
			}
			b.Log("\n" + r.String())
		}
	}
}

func BenchmarkFig7CodeSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := pgo.RunFig7(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows {
				b.ReportMetric(row.FullCSRel, row.Workload+"_cs_sizerel")
			}
			b.Log("\n" + r.String())
		}
	}
}

func BenchmarkFig8ProbeOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := pgo.RunFig8(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows {
				b.ReportMetric(row.ProbeOverheadPct, row.Workload+"_probe_ovh_%")
			}
			b.Log("\n" + r.String())
		}
	}
}

func BenchmarkFig9MetadataSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := pgo.RunFig9(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows {
				b.ReportMetric(row.ProbeSharePct, row.Workload+"_probemeta_%")
			}
			b.Log("\n" + r.String())
		}
	}
}

func BenchmarkTable1ProfileQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := pgo.RunTable1(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*r.OverlapAutoFDO, "overlap_autofdo_%")
			b.ReportMetric(100*r.OverlapCSSPGO, "overlap_csspgo_%")
			b.ReportMetric(r.OverheadInstrPct, "instr_ovh_%")
			b.Log("\n" + r.String())
		}
	}
}

func BenchmarkClientWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := pgo.RunClient(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.CSSPGOImpr, "csspgo_%")
			b.ReportMetric(r.InstrImpr, "instr_%")
			b.Log("\n" + r.String())
		}
	}
}

func BenchmarkSourceDrift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := pgo.RunDrift(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.AutoFDONoInfFreshImpr-r.AutoFDONoInfDriftedImpr, "autofdo_noinf_lost_pp")
			b.ReportMetric(r.CSSPGOFreshImpr-r.CSSPGODriftedImpr, "csspgo_lost_pp")
			b.Log("\n" + r.String())
		}
	}
}

func BenchmarkProfileSizeTrim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := pgo.RunTrim(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.BlowupX, "cs_blowup_x")
			b.ReportMetric(r.TrimmedX, "trimmed_x")
			b.Log("\n" + r.String())
		}
	}
}

func BenchmarkTailCallRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := pgo.RunTailCall(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*r.RecoveryRate, "recovered_%")
			b.Log("\n" + r.String())
		}
	}
}

func BenchmarkValueProfileExtension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := pgo.RunValueProfile(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.String())
		}
	}
}

func BenchmarkAblations(b *testing.B) {
	runs := map[string]func(int) (*pgo.AblationResult, error){
		"PreInliner": pgo.RunAblationPreInliner,
		"PEBS":       pgo.RunAblationPEBS,
		"Inference":  pgo.RunAblationInference,
		"Barrier":    pgo.RunAblationBarrier,
		"LBRDepth":   pgo.RunAblationLBRDepth,
		"ICP":        pgo.RunAblationICP,
	}
	for name, run := range runs {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := run(benchScale)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Log("\n" + r.String())
				}
			}
		})
	}
}

// ------------------------------------------------------ substrate micros

// BenchmarkSimulator measures raw interpreter throughput (instructions/s).
func BenchmarkSimulator(b *testing.B) {
	w, err := workloads.Load("hhvm", 1)
	if err != nil {
		b.Fatal(err)
	}
	res, err := pgo.Build(w.Files, pgo.BuildConfig{})
	if err != nil {
		b.Fatal(err)
	}
	m := sim.New(res.Bin, sim.DefaultCostParams(), sim.PMUConfig{})
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		before := m.Stats().Instructions
		if _, err := m.Run(int64(i), 200); err != nil {
			b.Fatal(err)
		}
		instrs += m.Stats().Instructions - before
	}
	b.ReportMetric(float64(instrs)/float64(b.N), "instrs/op")
}

// BenchmarkUnwinder measures Algorithm 1 throughput (samples/op).
func BenchmarkUnwinder(b *testing.B) {
	w, err := workloads.Load("adranker", 1)
	if err != nil {
		b.Fatal(err)
	}
	res, err := pgo.Build(w.Files, pgo.BuildConfig{Probes: true})
	if err != nil {
		b.Fatal(err)
	}
	samples, _, err := pgo.CollectSamples(res.Bin, w.Train, pgo.DefaultProfileConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats := sampling.GenerateCSSPGO(res.Bin, samples, sampling.DefaultCSSPGOOptions())
		if stats.Samples == 0 {
			b.Fatal("no samples unwound")
		}
	}
	b.ReportMetric(float64(len(samples)), "samples/op")
}

// BenchmarkParallelProfileGeneration measures the sharded worker pool on the
// Fig. 6 server corpus: the same sample streams unwound serially and with 2
// and 4 workers. Output profiles are byte-identical across the variants (the
// equivalence tests pin that); this benchmark only trades cores for
// wall-clock.
func BenchmarkParallelProfileGeneration(b *testing.B) {
	type corpus struct {
		bin     *machine.Prog
		samples []sim.Sample
	}
	var corpora []corpus
	for _, name := range workloads.ServerNames() {
		w, err := workloads.Load(name, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		res, err := pgo.Build(w.Files, pgo.BuildConfig{Probes: true})
		if err != nil {
			b.Fatal(err)
		}
		samples, _, err := pgo.CollectSamples(res.Bin, w.Train, pgo.DefaultProfileConfig())
		if err != nil {
			b.Fatal(err)
		}
		corpora = append(corpora, corpus{res.Bin, samples})
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := sampling.DefaultCSSPGOOptions()
			opts.Workers = workers
			var samples int
			for i := 0; i < b.N; i++ {
				samples = 0
				for _, c := range corpora {
					_, stats := sampling.GenerateCSSPGO(c.bin, c.samples, opts)
					samples += stats.Samples
				}
			}
			b.ReportMetric(float64(samples), "samples/op")
		})
	}
}

// BenchmarkStreamingGeneration contrasts the legacy batch path (materialize
// samples, then shard) with the streaming pipeline (chunked dispatch to
// pooled unwinder workers) on the Fig. 6 server corpus at an equal worker
// count. Output profiles are byte-identical (the equivalence tests pin
// that); this measures samples/sec and allocation discipline only.
func BenchmarkStreamingGeneration(b *testing.B) {
	type corpus struct {
		bin     *machine.Prog
		samples []sim.Sample
	}
	var corpora []corpus
	total := 0
	for _, name := range workloads.ServerNames() {
		w, err := workloads.Load(name, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		res, err := pgo.Build(w.Files, pgo.BuildConfig{Probes: true})
		if err != nil {
			b.Fatal(err)
		}
		samples, _, err := pgo.CollectSamples(res.Bin, w.Train, pgo.DefaultProfileConfig())
		if err != nil {
			b.Fatal(err)
		}
		corpora = append(corpora, corpus{res.Bin, samples})
		total += len(samples)
	}
	for _, mode := range []struct {
		name   string
		stream bool
	}{{"batch", false}, {"stream", true}} {
		b.Run(mode.name, func(b *testing.B) {
			opts := sampling.DefaultCSSPGOOptions()
			opts.Stream = mode.stream
			opts.Workers = 1
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, c := range corpora {
					sampling.GenerateCSSPGO(c.bin, c.samples, opts)
				}
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(total)*float64(b.N)/sec, "samples/s")
			}
		})
	}
}

// BenchmarkInference measures the MCF profile-inference pass.
func BenchmarkInference(b *testing.B) {
	w, err := workloads.Load("adfinder", 1)
	if err != nil {
		b.Fatal(err)
	}
	res, err := pgo.Build(w.Files, pgo.BuildConfig{Probes: true})
	if err != nil {
		b.Fatal(err)
	}
	prof, err := pgo.CollectProfileFor(res, pgo.ProbeOnly, w.Train)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		build, err := pgo.Build(w.Files, pgo.BuildConfig{Probes: true, Profile: prof, DisableInference: true})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		inference.InferProgram(build.IR)
	}
}

// BenchmarkEndToEndPipeline measures one full CSSPGO train→optimize cycle.
func BenchmarkEndToEndPipeline(b *testing.B) {
	w, err := workloads.Load("adretriever", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pgo.Pipeline(w.Files, pgo.FullCS, w.Train); err != nil {
			b.Fatal(err)
		}
	}
}
