// Package csspgo is a from-scratch reproduction of "Revamping
// Sampling-Based PGO with Context-Sensitivity and Pseudo-Instrumentation"
// (CGO 2024): a complete profile-guided-optimization stack — MiniLang
// frontend, CFG IR, optimizer, machine-code backend, cycle-accurate-ish CPU
// simulator with LBR/PEBS sampling, profile generation with the Algorithm 1
// virtual unwinder, MCF profile inference, the offline context-sensitive
// pre-inliner, and the evaluation harness regenerating the paper's tables
// and figures.
//
// This package is the public facade. A typical round trip:
//
//	mods := []csspgo.Module{{Name: "app.ml", Source: src}}
//	res, prof, err := csspgo.BuildVariant(mods, csspgo.FullCS, train)
//	stats, err := csspgo.Run(res, eval)
//
// Lower-level building blocks (IR, passes, simulator, profilers) live in
// the internal packages; the experiment harness is re-exported below.
package csspgo

import (
	"fmt"

	"csspgo/internal/machine"
	"csspgo/internal/pgo"
	"csspgo/internal/profdata"
	"csspgo/internal/sim"
	"csspgo/internal/source"
	"csspgo/internal/workloads"
)

// Module is one MiniLang source file; Name doubles as the ThinLTO-style
// module id.
type Module struct {
	Name   string
	Source string
}

// Variant selects a PGO flavour.
type Variant = pgo.Variant

// The PGO variants under study.
const (
	Baseline  = pgo.Baseline
	AutoFDO   = pgo.AutoFDO
	ProbeOnly = pgo.ProbeOnly
	FullCS    = pgo.FullCS
	InstrPGO  = pgo.InstrPGO
)

// BuildResult is a finished compilation.
type BuildResult = pgo.BuildResult

// Profile is a PGO profile (flat or context-sensitive).
type Profile = profdata.Profile

// Stats are simulator execution statistics.
type Stats = sim.Stats

// Parse parses modules into compiler input files.
func Parse(mods []Module) ([]*source.File, error) {
	files := make([]*source.File, 0, len(mods))
	for _, m := range mods {
		f, err := source.Parse(m.Name, m.Source)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("csspgo: no modules")
	}
	return files, nil
}

// BuildVariant runs the full train → profile → optimize pipeline for the
// given variant: it builds the appropriate training binary, profiles it on
// the training requests, generates the variant's profile (including
// trimming and the pre-inliner for FullCS) and produces the optimized
// binary. Baseline ignores train and returns a nil profile.
func BuildVariant(mods []Module, v Variant, train [][]int64) (*BuildResult, *Profile, error) {
	files, err := Parse(mods)
	if err != nil {
		return nil, nil, err
	}
	return pgo.Pipeline(files, v, train)
}

// Build compiles the modules once with explicit controls (no profiling
// run). See pgo.BuildConfig for the knobs.
func Build(mods []Module, cfg pgo.BuildConfig) (*BuildResult, error) {
	files, err := Parse(mods)
	if err != nil {
		return nil, err
	}
	return pgo.Build(files, cfg)
}

// BuildConfig re-exports the explicit build controls.
type BuildConfig = pgo.BuildConfig

// Run executes the binary on each request (fresh process image per call
// sequence is NOT reset — it models a long-lived server; use RunFresh for
// per-request isolation) and returns accumulated statistics.
func Run(res *BuildResult, requests [][]int64) (Stats, error) {
	return pgo.Evaluate(res.Bin, requests)
}

// RunOutputs executes the binary and returns main's results per request.
func RunOutputs(res *BuildResult, requests [][]int64) ([]int64, Stats, error) {
	m := sim.New(res.Bin, sim.DefaultCostParams(), sim.PMUConfig{})
	outs := make([]int64, 0, len(requests))
	for _, req := range requests {
		v, err := m.Run(req...)
		if err != nil {
			return nil, sim.Stats{}, err
		}
		outs = append(outs, v)
	}
	return outs, m.Stats(), nil
}

// CollectProfile profiles an existing training build and generates the
// profile the given variant would consume (nil for Baseline).
func CollectProfile(res *BuildResult, v Variant, train [][]int64) (*Profile, error) {
	return pgo.CollectProfileFor(res, v, train)
}

// EncodeProfile renders a profile in the text format; DecodeProfile parses
// it back.
func EncodeProfile(p *Profile) string { return profdata.EncodeToString(p) }

// DecodeProfile parses the text profile format.
func DecodeProfile(s string) (*Profile, error) { return profdata.DecodeString(s) }

// EncodeProfileBinary renders the compact binary profile format;
// DecodeProfileAny parses either format by auto-detection.
func EncodeProfileBinary(p *Profile) []byte { return profdata.EncodeBinary(p) }

// DecodeProfileAny parses a profile in either the text or the binary
// format, auto-detected by magic.
func DecodeProfileAny(data []byte) (*Profile, error) { return profdata.DecodeAny(data) }

// Binary is the compiled machine program type (simulator input).
type Binary = machine.Prog

// Workload re-exports the synthetic evaluation workloads.
type Workload = workloads.Workload

// LoadWorkload builds one of the named evaluation workloads
// ("adranker", "adretriever", "adfinder", "hhvm", "haas", "clangish") at
// the given request-stream scale.
func LoadWorkload(name string, scale int) (*Workload, error) {
	return workloads.Load(name, scale)
}

// ServerWorkloads lists the five server workloads in evaluation order.
func ServerWorkloads() []string { return workloads.ServerNames() }

// Experiment harness re-exports: each Run* regenerates one table or figure
// of the paper (see DESIGN.md's per-experiment index).
var (
	RunFig6     = pgo.RunFig6
	RunFig7     = pgo.RunFig7
	RunFig8     = pgo.RunFig8
	RunFig9     = pgo.RunFig9
	RunTable1   = pgo.RunTable1
	RunClient   = pgo.RunClient
	RunDrift    = pgo.RunDrift
	RunTrim     = pgo.RunTrim
	RunTailCall = pgo.RunTailCall

	// Ablation studies (see DESIGN.md).
	RunAblationPreInliner = pgo.RunAblationPreInliner
	RunAblationPEBS       = pgo.RunAblationPEBS
	RunAblationInference  = pgo.RunAblationInference
	RunAblationBarrier    = pgo.RunAblationBarrier
	RunAblationLBRDepth   = pgo.RunAblationLBRDepth

	// Extension: value profiling & indirect-call promotion.
	RunValueProfile = pgo.RunValueProfile
)
